package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/coord"
	"repro/internal/remote"
)

// The /v1/jobs handlers: the HTTP face of internal/coord's
// job-resource API.  The coordinator owns the job state machine and
// its persistence; this file only translates between HTTP and
// coordinator calls — including coordinator errors to envelope codes
// (ErrNotFound -> not_found 404, ErrTerminal/ErrNotDone -> conflict
// 409).
//
// Jobs are cheap to submit — the campaign itself runs on coordinator
// goroutines, admitted per unit through the same /v1/run endpoints as
// any sharded client — so the jobs endpoints bypass the expensive
// admission gate: shedding a status poll would only make an anxious
// client poll harder.

// maxJobBody bounds a POST /v1/jobs body; job specs are configuration
// records plus at most a few thousand small unit specs.
const maxJobBody = 8 << 20

// coordErr translates a coordinator error into an httpError carrying
// the right status and envelope code.
func coordErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, coord.ErrNotFound):
		return notFound("%v", err)
	case errors.Is(err, coord.ErrTerminal), errors.Is(err, coord.ErrNotDone):
		return conflict("%v", err)
	default:
		return err
	}
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) error {
	var spec coord.JobSpec
	body := http.MaxBytesReader(w, r.Body, maxJobBody)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		return badRequest("decoding job spec: %v", err)
	}
	if err := spec.Validate(); err != nil {
		return badRequest("%v", err)
	}
	st, created, err := s.coord.Submit(spec)
	if err != nil {
		return coordErr(err)
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	w.Header().Set("Location", coord.JobsPath+"/"+st.ID)
	return writeJSON(w, status, st)
}

// JobListResponse is the GET /v1/jobs body.
type JobListResponse struct {
	Jobs []coord.JobStatus `json:"jobs"`
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) error {
	jobs := s.coord.List()
	if jobs == nil {
		jobs = []coord.JobStatus{}
	}
	return writeJSON(w, http.StatusOK, JobListResponse{Jobs: jobs})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) error {
	st, err := s.coord.Status(r.PathValue("id"))
	if err != nil {
		return coordErr(err)
	}
	return writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) error {
	res, err := s.coord.Result(r.PathValue("id"))
	if err != nil {
		return coordErr(err)
	}
	return writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) error {
	st, err := s.coord.Cancel(r.PathValue("id"))
	if err != nil {
		return coordErr(err)
	}
	return writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleBackendRegister(w http.ResponseWriter, r *http.Request) error {
	var req coord.RegisterRequest
	if err := decodeUnit(w, r, &req); err != nil {
		return err
	}
	if req.Addr == "" {
		return badRequest("backend registration without an addr")
	}
	deadline := s.coord.Registry().Register(req.Addr, time.Duration(req.TTLSeconds)*time.Second)
	return writeJSON(w, http.StatusOK, coord.Member{Addr: req.Addr, Expires: deadline})
}

// BackendListResponse is the GET /v1/backends body.
type BackendListResponse struct {
	Backends []coord.Member `json:"backends"`
}

func (s *Server) handleBackendList(w http.ResponseWriter, r *http.Request) error {
	members := s.coord.Registry().Entries()
	if members == nil {
		members = []coord.Member{}
	}
	return writeJSON(w, http.StatusOK, BackendListResponse{Backends: members})
}

// jobEventsPollInterval is how often the job SSE stream samples the
// coordinator; matches the campaign progress stream's cadence.
const jobEventsPollInterval = 50 * time.Millisecond

// handleJobEvents streams one job's lifecycle as server-sent events:
// an event whenever the status changes (state transition or progress
// tick), ending after the job reaches a terminal state or the client
// disconnects.  Like /v1/progress it streams, so it is registered
// outside the admission gate and instruments itself.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	st, err := s.coord.Status(r.PathValue("id"))
	if err != nil {
		s.metrics.record("jobs_events", time.Since(start), true)
		status, code := http.StatusInternalServerError, remote.CodeInternal
		if he, ok := coordErr(err).(httpError); ok {
			status, code = he.status, he.code
		}
		writeError(w, status, code, err.Error())
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.metrics.record("jobs_events", time.Since(start), true)
		writeError(w, http.StatusInternalServerError, remote.CodeInternal, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func(st coord.JobStatus) {
		data, err := json.Marshal(st)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "data: %s\n\n", data)
		flusher.Flush()
	}

	ticker := time.NewTicker(jobEventsPollInterval)
	defer ticker.Stop()
	last := coord.JobStatus{}
	for {
		if st.State != last.State || st.Done != last.Done {
			emit(st)
			last = st
		}
		if coord.TerminalState(st.State) {
			s.metrics.record("jobs_events", time.Since(start), false)
			return
		}
		select {
		case <-r.Context().Done():
			s.metrics.record("jobs_events", time.Since(start), false)
			return
		case <-ticker.C:
		}
		if st, err = s.coord.Status(r.PathValue("id")); err != nil {
			// The job vanished mid-stream (memory-only coordinator
			// restarted); end the stream rather than erroring it.
			s.metrics.record("jobs_events", time.Since(start), false)
			return
		}
	}
}
