package service

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/remote"
)

// progressBoard tracks session completion of in-flight campaigns, fed
// by the campaign cache's OnProgress hook and drained by the
// /v1/progress SSE stream.
type progressBoard struct {
	mu   sync.Mutex
	jobs map[core.StudyConfig]*campaignJob
}

type campaignJob struct {
	done, total int
}

func newProgressBoard() *progressBoard {
	return &progressBoard{jobs: make(map[core.StudyConfig]*campaignJob)}
}

// observe implements core.StudyCache's OnProgress contract; it runs
// on engine worker goroutines.
func (b *progressBoard) observe(cfg core.StudyConfig, done, total int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	j := b.jobs[cfg]
	if j == nil {
		j = &campaignJob{}
		b.jobs[cfg] = j
	}
	switch {
	case done == 0:
		// A fresh campaign announcing itself (the cache fires
		// progress(0, total) before any session runs): reset the job
		// so a recompute after purge or memo eviction tracks from
		// zero instead of being rejected by the monotonic guard.
		j.done = 0
	case done > j.done:
		j.done = done
	}
	j.total = total
}

// reset forgets all tracked jobs (cache purge).
func (b *progressBoard) reset() {
	b.mu.Lock()
	b.jobs = make(map[core.StudyConfig]*campaignJob)
	b.mu.Unlock()
}

// snapshot returns the tracked completion state of cfg's campaign.
func (b *progressBoard) snapshot(cfg core.StudyConfig) (done, total int, running bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	j := b.jobs[cfg]
	if j == nil {
		return 0, 0, false
	}
	return j.done, j.total, j.done < j.total
}

// ProgressEvent is one SSE data payload of /v1/progress.
type ProgressEvent struct {
	Scale string `json:"scale"`
	State string `json:"state"` // idle | running | done
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// progressPollInterval is how often the SSE stream samples the board.
const progressPollInterval = 50 * time.Millisecond

// handleProgress streams campaign progress for one scale as
// server-sent events: an event per state change (plus a keep-alive
// sample per poll while running), ending after the campaign is done
// or the client disconnects.  If no campaign is in flight the stream
// reports the current terminal state — "done" when the study is
// resident, "idle" otherwise — and closes.
func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	scale, cfg, err := scaleParam(r)
	if err != nil {
		s.metrics.record("progress", time.Since(start), true)
		writeError(w, http.StatusBadRequest, remote.CodeInvalidConfig, err.Error())
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.metrics.record("progress", time.Since(start), true)
		writeError(w, http.StatusInternalServerError, remote.CodeInternal, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func(ev ProgressEvent) {
		fmt.Fprintf(w, "data: {\"scale\":%q,\"state\":%q,\"done\":%d,\"total\":%d}\n\n",
			ev.Scale, ev.State, ev.Done, ev.Total)
		flusher.Flush()
	}

	ticker := time.NewTicker(progressPollInterval)
	defer ticker.Stop()
	for {
		done, total, running := s.progress.snapshot(cfg)
		switch {
		case running:
			emit(ProgressEvent{Scale: scale, State: "running", Done: done, Total: total})
		case total > 0 || s.cache.Cached(cfg):
			// total > 0: this server watched the campaign finish.
			// Cached alone: it was restored without running here.
			if total == 0 {
				// Restored from disk or memoized before this server
				// tracked it; report the configured session count.
				done, total = cfg.TotalSessions(), cfg.TotalSessions()
			}
			emit(ProgressEvent{Scale: scale, State: "done", Done: done, Total: total})
			s.metrics.record("progress", time.Since(start), false)
			return
		default:
			emit(ProgressEvent{Scale: scale, State: "idle", Done: 0, Total: cfg.TotalSessions()})
			s.metrics.record("progress", time.Since(start), false)
			return
		}
		select {
		case <-r.Context().Done():
			s.metrics.record("progress", time.Since(start), false)
			return
		case <-ticker.C:
		}
	}
}
