package service

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
)

// BenchmarkServiceStudy measures GET /v1/study end to end on a warm
// cache: admission, memo hit, and the canonical campaign encoding —
// the serving path every cached daemon request pays.  The campaign is
// computed once before the timer starts.  make bench records it in
// BENCH_service.json for the CI regression gate.
func BenchmarkServiceStudy(b *testing.B) {
	srv := New(Config{Cache: core.NewStudyCache(), MaxInFlight: 8})
	warm := httptest.NewRecorder()
	srv.ServeHTTP(warm, httptest.NewRequest("GET", "/v1/study?scale=quick", nil))
	if warm.Code != http.StatusOK {
		b.Fatalf("warmup = %d: %s", warm.Code, warm.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/study?scale=quick", nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d", rec.Code)
		}
	}
	b.SetBytes(int64(warm.Body.Len()))
}

// BenchmarkMetricsRecord measures the per-request metrics cost under
// parallelism — the path every handler pays on every request.  Its
// "before" shape (one global mutex around a map of per-endpoint
// structs) is preserved as obs's BenchmarkMutexMapRecord; this is the
// sharded-histogram "after".
func BenchmarkMetricsRecord(b *testing.B) {
	m := newMetrics()
	m.register("study")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := time.Microsecond
		for pb.Next() {
			d += 37 * time.Nanosecond
			m.record("study", d, false)
		}
	})
}
