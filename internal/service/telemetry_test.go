package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/obs"
)

func TestHealthzBuildIdentity(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, "")
	code, body := get(t, srv, "/v1/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d: %s", code, body)
	}
	var h HealthzResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Version == "" || h.Commit == "" {
		t.Errorf("healthz missing build identity: %+v", h)
	}
	if !strings.HasPrefix(h.GoVersion, "go") {
		t.Errorf("go_version = %q, want a runtime.Version() string", h.GoVersion)
	}
	if h.Goroutines <= 0 || h.HeapAlloc == 0 {
		t.Errorf("runtime vitals not populated: goroutines=%d heap=%d", h.Goroutines, h.HeapAlloc)
	}
}

func TestRequestIDAssignedAndEchoed(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, "")

	// No inbound ID: the server assigns one and echoes it.
	req := httptest.NewRequest("GET", "/v1/healthz", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if id := rec.Header().Get(obs.RequestIDHeader); id == "" {
		t.Error("no X-Request-Id assigned to a bare request")
	}

	// Inbound ID: propagated, not replaced.
	req = httptest.NewRequest("GET", "/v1/healthz", nil)
	req.Header.Set(obs.RequestIDHeader, "caller-chosen")
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if id := rec.Header().Get(obs.RequestIDHeader); id != "caller-chosen" {
		t.Errorf("X-Request-Id = %q, want the inbound ID echoed", id)
	}
}

func TestTraceEndpointReconstructsSpans(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, t.TempDir())

	for i := 0; i < 2; i++ {
		req := httptest.NewRequest("GET", "/v1/healthz", nil)
		req.Header.Set(obs.RequestIDHeader, "trace-me")
		srv.ServeHTTP(httptest.NewRecorder(), req)
	}
	unit, err := json.Marshal(core.StudyUnit{ID: 7, Random: &core.SessionSpec{
		Samples:  2,
		Sampling: monitor.SampleSpec{Snapshots: 2, GapCycles: 2_000},
		Seed:     9,
	}})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/run/session", strings.NewReader(string(unit)))
	req.Header.Set(obs.RequestIDHeader, "trace-me")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("run/session = %d: %s", rec.Code, rec.Body.String())
	}

	code, body := get(t, srv, "/v1/trace/trace-me")
	if code != http.StatusOK {
		t.Fatalf("trace = %d: %s", code, body)
	}
	var tr TraceResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.ID != "trace-me" || len(tr.Spans) != 3 {
		t.Fatalf("trace = %+v, want 3 spans under trace-me", tr)
	}
	var unitSpan *obs.Span
	for i := range tr.Spans {
		if tr.Spans[i].Name == "run_session" {
			unitSpan = &tr.Spans[i]
		} else if tr.Spans[i].Name != "healthz" {
			t.Errorf("unexpected span %+v", tr.Spans[i])
		}
		if tr.Spans[i].Outcome != "ok" {
			t.Errorf("span %s outcome = %q, want ok", tr.Spans[i].Name, tr.Spans[i].Outcome)
		}
	}
	if unitSpan == nil || len(unitSpan.Units) != 1 || unitSpan.Units[0] != 7 {
		t.Errorf("run_session span = %+v, want unit ID 7 recorded", unitSpan)
	}

	if code, _ := get(t, srv, "/v1/trace/never-seen"); code != http.StatusNotFound {
		t.Errorf("unknown trace = %d, want 404", code)
	}
}

// TestBareRequestsNotTraced pins the tracing opt-in: a request
// without an inbound X-Request-Id gets an assigned ID echoed for log
// correlation but records no span — uncorrelated traffic must not
// evict campaign traces from the bounded store.
func TestBareRequestsNotTraced(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, "")
	req := httptest.NewRequest("GET", "/v1/healthz", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	id := rec.Header().Get(obs.RequestIDHeader)
	if id == "" {
		t.Fatal("no X-Request-Id assigned")
	}
	if code, _ := get(t, srv, "/v1/trace/"+id); code != http.StatusNotFound {
		t.Errorf("assigned-ID trace = %d, want 404: bare requests must not occupy the trace store", code)
	}
}

// parseProm decodes Prometheus text exposition into sample name{labels}
// -> value, skipping comment lines.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

func TestMetricsPrometheusExposition(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, t.TempDir())
	for i := 0; i < 3; i++ {
		get(t, srv, "/v1/healthz")
	}

	req := httptest.NewRequest("GET", "/v1/metrics?format=prometheus", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	text := rec.Body.String()
	samples := parseProm(t, text)

	// The healthz latency histogram: cumulative buckets ending at
	// +Inf, consistent with _count, plus a positive _sum.
	prefix := `fx8d_request_duration_seconds_bucket{endpoint="healthz",le="`
	var prev float64
	var buckets int
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		buckets++
		v := samples[line[:strings.LastIndexByte(line, ' ')]]
		if v < prev {
			t.Errorf("bucket counts not monotone at %q: %v < %v", line, v, prev)
		}
		prev = v
	}
	if buckets == 0 {
		t.Fatalf("no healthz buckets in exposition:\n%s", text)
	}
	count := samples[`fx8d_request_duration_seconds_count{endpoint="healthz"}`]
	if count != 3 {
		t.Errorf("healthz _count = %v, want 3", count)
	}
	if prev != count {
		t.Errorf("+Inf bucket = %v, want _count %v", prev, count)
	}
	if samples[`fx8d_request_duration_seconds_sum{endpoint="healthz"}`] <= 0 {
		t.Errorf("healthz _sum not positive")
	}

	// Engine, cache and store families are present.
	for _, name := range []string{
		"fx8d_engine_inflight_units",
		`fx8d_cache_outcomes_total{tier="memory"}`,
		"fx8d_store_hits_total",
		"fx8d_inflight_requests",
	} {
		if _, ok := samples[name]; !ok {
			t.Errorf("exposition missing %s", name)
		}
	}

	// One HELP and one TYPE line per family.
	for _, fam := range []string{"fx8d_request_duration_seconds", "fx8d_request_errors_total"} {
		if n := strings.Count(text, "# HELP "+fam+" "); n != 1 {
			t.Errorf("%d HELP lines for %s, want 1", n, fam)
		}
		if n := strings.Count(text, "# TYPE "+fam+" "); n != 1 {
			t.Errorf("%d TYPE lines for %s, want 1", n, fam)
		}
	}
}

func TestMetricsContentNegotiation(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, "")
	get(t, srv, "/v1/healthz")

	cases := []struct {
		accept, query string
		wantProm      bool
	}{
		{"", "", false},                             // default stays JSON
		{"*/*", "", false},                          // curl's default stays JSON
		{"text/plain", "", true},                    // scraper Accept
		{"application/openmetrics-text", "", true},  // modern scraper Accept
		{"text/html", "?format=prometheus", true},   // explicit query wins
		{"text/plain;q=0.9", "?format=json", false}, // explicit query wins
	}
	for _, c := range cases {
		req := httptest.NewRequest("GET", "/v1/metrics"+c.query, nil)
		if c.accept != "" {
			req.Header.Set("Accept", c.accept)
		}
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		isProm := strings.HasPrefix(rec.Header().Get("Content-Type"), "text/plain")
		if isProm != c.wantProm {
			t.Errorf("Accept=%q query=%q: prometheus=%v, want %v", c.accept, c.query, isProm, c.wantProm)
		}
	}
}

// TestMetricsScrapeVsRecordRace drives concurrent recording (healthz
// requests) against concurrent scrapes of both metric formats; the
// race detector (CI runs this package with -race) is the assertion.
func TestMetricsScrapeVsRecordRace(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, t.TempDir())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				req := httptest.NewRequest("GET", "/v1/healthz", nil)
				req.Header.Set(obs.RequestIDHeader, fmt.Sprintf("race-%d", g))
				srv.ServeHTTP(httptest.NewRecorder(), req)
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				get(t, srv, "/v1/metrics")
				get(t, srv, "/v1/metrics?format=prometheus")
				get(t, srv, "/v1/trace/race-0")
			}
		}()
	}
	wg.Wait()

	code, body := get(t, srv, "/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	var m MetricsResponse
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	for _, ep := range m.Endpoints {
		if ep.Endpoint == "healthz" && ep.Requests < 200 {
			t.Errorf("healthz requests = %d, want >= 200", ep.Requests)
		}
	}
}
