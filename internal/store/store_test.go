package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func timeFromUnix(sec int64) time.Time { return time.Unix(sec, 0) }

func open(t *testing.T, opts ...Option) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := open(t)
	key, err := Key("test/v1", struct{ A, B int }{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("campaign artefact bytes")
	if _, ok := s.Get(key); ok {
		t.Fatal("Get before Put reported a hit")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want payload back", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 write", st)
	}
}

func TestKeyIsStableAndConfigSensitive(t *testing.T) {
	type cfg struct{ Seed uint64 }
	a1, _ := Key("ns", cfg{1})
	a2, _ := Key("ns", cfg{1})
	b, _ := Key("ns", cfg{2})
	other, _ := Key("other", cfg{1})
	if a1 != a2 {
		t.Error("identical configs produced different keys")
	}
	if a1 == b {
		t.Error("different configs collided")
	}
	if a1 == other {
		t.Error("different namespaces collided")
	}
	if len(a1) != 64 || strings.ToLower(a1) != a1 {
		t.Errorf("key %q is not lowercase hex sha256", a1)
	}
}

// TestPartialWriteDetected simulates a crash mid-write (or later
// truncation): the payload is shorter than the header claims, so the
// entry must read as a miss and be removed.
func TestPartialWriteDetected(t *testing.T) {
	s := open(t)
	key, _ := Key("test/v1", 1)
	if err := s.Put(key, []byte("0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(key), raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Error("truncated entry served as a hit")
	}
	if _, err := os.Stat(s.path(key)); !os.IsNotExist(err) {
		t.Error("truncated entry not removed")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("Corrupt = %d, want 1", st.Corrupt)
	}
	// Recompute path: a fresh Put must restore service.
	if err := s.Put(key, []byte("recomputed")); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key); !ok || string(got) != "recomputed" {
		t.Errorf("recomputed entry = %q, %v", got, ok)
	}
}

// TestCorruptPayloadDetected flips payload bytes without touching the
// length, exercising the checksum.
func TestCorruptPayloadDetected(t *testing.T) {
	s := open(t)
	key, _ := Key("test/v1", 2)
	if err := s.Put(key, []byte("sensitive measurement data")); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(s.path(key))
	raw[len(raw)-3] ^= 0xff
	os.WriteFile(s.path(key), raw, 0o644)
	if _, ok := s.Get(key); ok {
		t.Error("bit-flipped entry served as a hit")
	}
}

// TestVersionMismatchInvalidates rewrites an entry with a future
// format version; it must read as a miss (format changes invalidate
// cleanly) and be removed.
func TestVersionMismatchInvalidates(t *testing.T) {
	s := open(t)
	key, _ := Key("test/v1", 3)
	if err := s.Put(key, []byte("old world")); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(s.path(key))
	bumped := bytes.Replace(raw, []byte(fmt.Sprintf("%s %d ", magic, formatVersion)),
		[]byte(fmt.Sprintf("%s %d ", magic, formatVersion+1)), 1)
	if bytes.Equal(bumped, raw) {
		t.Fatal("test did not rewrite the version field")
	}
	os.WriteFile(s.path(key), bumped, 0o644)
	if _, ok := s.Get(key); ok {
		t.Error("future-version entry served as a hit")
	}
	if _, err := os.Stat(s.path(key)); !os.IsNotExist(err) {
		t.Error("stale-version entry not removed")
	}
}

func TestGarbageHeaderDetected(t *testing.T) {
	s := open(t)
	key, _ := Key("test/v1", 4)
	for _, junk := range []string{"", "not a header", "fx8store one two\npayload"} {
		os.WriteFile(s.path(key), []byte(junk), 0o644)
		if _, ok := s.Get(key); ok {
			t.Errorf("garbage entry %q served as a hit", junk)
		}
	}
}

// TestConcurrentReadersAndWriters hammers one key with concurrent
// Gets and Puts: every successful read must observe a complete,
// self-consistent entry (atomic rename), never a torn one.
func TestConcurrentReadersAndWriters(t *testing.T) {
	s := open(t)
	key, _ := Key("test/v1", 5)
	payload := bytes.Repeat([]byte("deterministic"), 1024)
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := s.Put(key, payload); err != nil {
					t.Errorf("concurrent Put: %v", err)
					return
				}
			}
		}()
	}
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got, ok := s.Get(key)
				if !ok {
					t.Error("reader missed while entry existed")
					return
				}
				if !bytes.Equal(got, payload) {
					t.Error("reader observed a torn entry")
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Corrupt != 0 {
		t.Errorf("Corrupt = %d under concurrent access", st.Corrupt)
	}
}

// TestPurgeRacesInFlightWrites pins the re-read/remove race noted in
// removeIfUnchanged: with Purge, Put and Get racing on one key, a
// reader must only ever observe the exact stored payload or a clean
// miss — never a torn or foreign entry surfaced as a hit.  Run under
// -race in CI.
func TestPurgeRacesInFlightWrites(t *testing.T) {
	s := open(t)
	key, _ := Key("test/v1", "contended")
	payload := bytes.Repeat([]byte("stable-bytes"), 512)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.Put(key, payload); err != nil {
					t.Errorf("Put during purge race: %v", err)
					return
				}
			}
		}()
	}
	// The purger is the bounded goroutine: it runs a fixed number of
	// purges against the churn, then stops everyone.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 60; i++ {
			if err := s.Purge(); err != nil {
				t.Errorf("Purge during writes: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got, ok := s.Get(key); ok && !bytes.Equal(got, payload) {
					t.Error("Get surfaced a corrupt read as a hit during purge")
					return
				}
			}
		}()
	}

	wg.Wait()
	if st := s.Stats(); st.Corrupt != 0 {
		t.Errorf("Corrupt = %d; purge surfaced defective entries", st.Corrupt)
	}
}

func TestSizeBoundEvictsOldest(t *testing.T) {
	s := open(t, WithMaxBytes(400))
	payload := bytes.Repeat([]byte("x"), 100) // ~175 bytes with header
	var keys []string
	for i := 0; i < 5; i++ {
		k, _ := Key("test/v1", i)
		keys = append(keys, k)
		if err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so "oldest" is well defined on coarse
		// filesystem clocks.
		ts := int64(1_000_000 + i*10)
		os.Chtimes(s.path(k), timeFromUnix(ts), timeFromUnix(ts))
	}
	if err := s.enforceBound(); err != nil {
		t.Fatal(err)
	}
	if sz := s.Size(); sz > 400 {
		t.Errorf("Size = %d after eviction, want <= 400", sz)
	}
	if _, ok := s.Get(keys[0]); ok {
		t.Error("oldest entry survived the size bound")
	}
	if _, ok := s.Get(keys[4]); !ok {
		t.Error("newest entry evicted")
	}
}

func TestPurgeRemovesOnlyEntries(t *testing.T) {
	s := open(t)
	for i := 0; i < 3; i++ {
		k, _ := Key("test/v1", i)
		if err := s.Put(k, []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	bystander := filepath.Join(s.Dir(), "README.txt")
	os.WriteFile(bystander, []byte("not an entry"), 0o644)
	if err := s.Purge(); err != nil {
		t.Fatal(err)
	}
	if n := s.Len(); n != 0 {
		t.Errorf("Len after Purge = %d", n)
	}
	if _, err := os.Stat(bystander); err != nil {
		t.Error("Purge removed a non-entry file")
	}
}

func TestOpenRejectsUnwritableDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	dir := t.TempDir()
	os.Chmod(dir, 0o555)
	defer os.Chmod(dir, 0o755)
	if _, err := Open(filepath.Join(dir, "sub", "cache")); err == nil {
		t.Error("Open of uncreatable directory succeeded")
	}
}

func TestJSONHelpers(t *testing.T) {
	s := open(t)
	type point struct{ X, Y float64 }
	key, _ := Key("points/v1", "k")
	var out []point
	if GetJSON(s, key, &out) {
		t.Error("GetJSON hit before Put")
	}
	in := []point{{1, 2}, {3.5, -0.25}}
	if err := PutJSON(s, key, in); err != nil {
		t.Fatal(err)
	}
	if !GetJSON(s, key, &out) {
		t.Fatal("GetJSON missed after PutJSON")
	}
	if len(out) != 2 || out[1] != in[1] {
		t.Errorf("round trip = %+v", out)
	}
	// Undecodable payload counts as corrupt and is removed.
	if err := s.Put(key, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	if GetJSON(s, key, &out) {
		t.Error("GetJSON decoded garbage")
	}
	if _, err := os.Stat(s.path(key)); !os.IsNotExist(err) {
		t.Error("undecodable entry not removed")
	}
	// Nil store: optional cache threading.
	if GetJSON[int](nil, key, new(int)) {
		t.Error("nil store hit")
	}
	if err := PutJSON(nil, key, 1); err != nil {
		t.Error("nil store Put errored")
	}
}

// TestGetOrComputeJSON pins the shared get-or-compute shape: compute
// exactly once, then serve from disk; compute errors propagate
// without writing; a nil store always computes.
func TestGetOrComputeJSON(t *testing.T) {
	s := open(t)
	computes := 0
	compute := func() (int, error) { computes++; return 42, nil }

	got, err := GetOrComputeJSON(s, "answer/v1", "q", compute)
	if err != nil || got != 42 {
		t.Fatalf("first call = %d, %v", got, err)
	}
	got, err = GetOrComputeJSON(s, "answer/v1", "q", compute)
	if err != nil || got != 42 {
		t.Fatalf("second call = %d, %v", got, err)
	}
	if computes != 1 {
		t.Errorf("computed %d times, want once then disk", computes)
	}
	// A different namespace or config is a different artefact.
	if _, err := GetOrComputeJSON(s, "answer/v2", "q", compute); err != nil {
		t.Fatal(err)
	}
	if computes != 2 {
		t.Errorf("namespace change did not recompute (computes = %d)", computes)
	}

	boom := errors.New("compute failed")
	if _, err := GetOrComputeJSON(s, "err/v1", "q", func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Errorf("compute error = %v, want propagated", err)
	}
	if k, _ := Key("err/v1", "q"); s.Has(k) {
		t.Error("failed compute wrote an entry")
	}

	nilComputes := 0
	for i := 0; i < 2; i++ {
		if v, err := GetOrComputeJSON(nil, "n/v1", "q", func() (int, error) { nilComputes++; return 7, nil }); err != nil || v != 7 {
			t.Fatalf("nil store call = %d, %v", v, err)
		}
	}
	if nilComputes != 2 {
		t.Errorf("nil store computed %d times, want every call", nilComputes)
	}
}
