package store

import (
	"io"
	"io/fs"
	"os"
)

// FS is the store's seam to the filesystem: every file operation a
// Store performs goes through one FS.  The default is the real
// filesystem (OS); internal/chaos substitutes a fault-injecting
// implementation so disk failures — write errors, short writes,
// bit-flip corruption, eviction under a reader — can be scheduled
// deterministically in tests.  Implementations must be safe for
// concurrent use, like the os package calls they stand in for.
type FS interface {
	// MkdirAll creates a directory path along with any missing
	// parents, like os.MkdirAll.
	MkdirAll(path string, perm fs.FileMode) error

	// CreateTemp creates a new temporary file in dir whose name is
	// built from pattern, like os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)

	// ReadFile returns the named file's contents, like os.ReadFile.
	ReadFile(name string) ([]byte, error)

	// Rename atomically moves oldpath to newpath, like os.Rename.
	Rename(oldpath, newpath string) error

	// Link creates newpath as a hard link to oldpath, failing with
	// fs.ErrExist when newpath exists, like os.Link.
	Link(oldpath, newpath string) error

	// Remove deletes the named file, like os.Remove.
	Remove(name string) error

	// ReadDir lists the named directory, like os.ReadDir.
	ReadDir(name string) ([]fs.DirEntry, error)

	// Stat describes the named file, like os.Stat.
	Stat(name string) (fs.FileInfo, error)
}

// File is the writable handle CreateTemp returns — the subset of
// *os.File the store uses.
type File interface {
	io.Writer

	// Name returns the file's path, like (*os.File).Name.
	Name() string

	// Close flushes and closes the file, like (*os.File).Close.
	Close() error
}

// osFS is the real filesystem.
type osFS struct{}

// OS returns the default FS: the real filesystem via the os package.
// Fault-injecting filesystems wrap this as their base.
func OS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Link(oldpath, newpath string) error           { return os.Link(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}
