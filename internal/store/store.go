// Package store is a content-addressed, on-disk artefact store for
// campaign results.  The study's measurement campaigns are expensive
// and deterministic: a result is a pure function of its canonically
// encoded configuration, so the store keys every entry by a stable
// hash of that configuration and treats the disk as a second cache
// tier shared by every process pointed at the same directory — the
// CLI tools and the fx8d daemon.
//
// Entries are written atomically (temp file + rename into place), so
// readers never observe a half-written entry under normal operation.
// Each entry carries a versioned header with a payload checksum and
// length; truncated, corrupted or format-incompatible entries are
// detected on read, removed, and reported as misses so callers simply
// recompute.  An optional size bound evicts the oldest entries.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// formatVersion is the on-disk entry format version.  Bumping it
// invalidates every existing entry cleanly: old entries read as
// misses and are removed.
const formatVersion = 1

// magic is the first header field of every entry.
const magic = "fx8store"

// entryExt is the filename extension of store entries; everything
// else in the directory is left alone.
const entryExt = ".fx8s"

// Key returns the content address of a configuration: the hex SHA-256
// of the namespace and the canonical JSON encoding of v.  Namespaces
// keep differently-typed artefacts with coincidentally identical
// encodings apart ("study/v1", "sweep/v1", ...) and version the
// logical schema: changing what a namespace's payload means requires
// a new namespace, which misses cleanly against old entries.
func Key(namespace string, v any) (string, error) {
	enc, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("store: encoding key config: %w", err)
	}
	h := sha256.New()
	h.Write([]byte(namespace))
	h.Write([]byte{0})
	h.Write(enc)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Stats counts store outcomes since Open.
type Stats struct {
	Hits    uint64 // entries served intact
	Misses  uint64 // absent entries
	Corrupt uint64 // entries rejected (truncated, bad checksum, old version)
	Writes  uint64 // entries written
	Evicted uint64 // entries removed by the size bound
}

// Store is an on-disk entry store rooted at one directory.  All
// methods are safe for concurrent use by multiple goroutines; cross-
// process safety relies on atomic rename, so two processes computing
// the same key concurrently both succeed and one entry survives.
type Store struct {
	dir      string
	maxBytes int64
	fs       FS

	mu sync.Mutex // serializes size-bound enforcement and Purge

	hits, misses, corrupt, writes, evicted atomic.Uint64
}

// Option configures a Store.
type Option func(*Store)

// WithMaxBytes bounds the total size of stored entries: after each
// write, the oldest entries (by modification time) are evicted until
// the store fits.  n <= 0 means unbounded (the default).
func WithMaxBytes(n int64) Option {
	return func(s *Store) { s.maxBytes = n }
}

// WithFS substitutes the filesystem every store operation goes
// through — the fault-injection seam.  nil means the real filesystem
// (the default).
func WithFS(fsys FS) Option {
	return func(s *Store) {
		if fsys != nil {
			s.fs = fsys
		}
	}
}

// Open creates (if needed) and validates the store directory,
// returning a Store rooted there.  It probes for writability so
// misconfigured cache directories fail at startup, not mid-campaign.
func Open(dir string, opts ...Option) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	s := &Store{dir: dir, fs: OS()}
	for _, o := range opts {
		o(s)
	}
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	probe, err := s.fs.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("store: %s not writable: %w", dir, err)
	}
	probe.Close()
	s.fs.Remove(probe.Name())
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's outcome counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Corrupt: s.corrupt.Load(),
		Writes:  s.writes.Load(),
		Evicted: s.evicted.Load(),
	}
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+entryExt)
}

// Get returns the payload stored under key.  Any defect — a missing
// entry, a truncated or corrupted payload, an incompatible format
// version — reports ok == false, after removing the defective file so
// the next Put rewrites it; callers recompute and Put.
func (s *Store) Get(key string) (data []byte, ok bool) {
	raw, err := s.fs.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	payload, err := decodeEntry(raw)
	if err != nil {
		s.corrupt.Add(1)
		s.removeIfUnchanged(s.path(key), raw)
		return nil, false
	}
	s.hits.Add(1)
	return payload, true
}

// removeIfUnchanged deletes a defective entry only if its content
// still matches what was read, so a valid entry a concurrent Put just
// renamed into place survives the cleanup.  (A race remains between
// the re-read and the remove, but it requires a rename inside that
// microsecond window against content that was defective moments
// before; the caller recomputes and rewrites either way.)
func (s *Store) removeIfUnchanged(path string, seen []byte) {
	cur, err := s.fs.ReadFile(path)
	if err == nil && bytes.Equal(cur, seen) {
		s.fs.Remove(path)
	}
}

// decodeEntry validates an entry's header, length and checksum and
// returns the payload.
func decodeEntry(raw []byte) ([]byte, error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, errors.New("store: missing entry header")
	}
	fields := bytes.Fields(raw[:nl])
	if len(fields) != 4 || string(fields[0]) != magic {
		return nil, errors.New("store: malformed entry header")
	}
	version, err := strconv.Atoi(string(fields[1]))
	if err != nil || version != formatVersion {
		return nil, fmt.Errorf("store: entry format version %s, want %d", fields[1], formatVersion)
	}
	wantLen, err := strconv.Atoi(string(fields[3]))
	if err != nil {
		return nil, errors.New("store: malformed entry length")
	}
	payload := raw[nl+1:]
	if len(payload) != wantLen {
		return nil, fmt.Errorf("store: entry payload %d bytes, header says %d", len(payload), wantLen)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != string(fields[2]) {
		return nil, errors.New("store: entry checksum mismatch")
	}
	return payload, nil
}

// Has reports whether an entry exists under key, without reading or
// validating it — a cheap presence probe; a defective entry still
// reads as a miss on Get.
func (s *Store) Has(key string) bool {
	_, err := s.fs.Stat(s.path(key))
	return err == nil
}

// encodeEntry frames a payload in the on-disk entry format.  The
// framing is deterministic: a payload always produces the same entry
// bytes.
func encodeEntry(data []byte) []byte {
	sum := sha256.Sum256(data)
	header := fmt.Sprintf("%s %d %s %d\n", magic, formatVersion, hex.EncodeToString(sum[:]), len(data))
	return append([]byte(header), data...)
}

// Put stores data under key atomically: the entry is written to a
// temporary file in the store directory and renamed into place, so a
// concurrent Get sees either the previous entry or the complete new
// one, never a partial write.
func (s *Store) Put(key string, data []byte) error {
	tmp, err := s.fs.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("store: creating temp entry: %w", err)
	}
	defer s.fs.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(encodeEntry(data)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing entry: %w", err)
	}
	if err := s.fs.Rename(tmp.Name(), s.path(key)); err != nil {
		return fmt.Errorf("store: publishing entry: %w", err)
	}
	s.writes.Add(1)
	return s.enforceBound()
}

// Claim stores data under key only if no entry exists there,
// reporting whether this caller won.  Unlike Put's last-writer-wins
// rename, Claim publishes with a hard link, which fails when the
// target exists — so of any number of processes claiming the same key
// concurrently, exactly one succeeds.  The entry is fully written
// before it is linked into place, so a reader never observes a
// partial claim.  This is the store's mutual-exclusion primitive:
// the coordinator leases job ownership by claiming a lease key and
// Delete-ing it on release.
func (s *Store) Claim(key string, data []byte) (won bool, err error) {
	tmp, err := s.fs.CreateTemp(s.dir, ".claim-*")
	if err != nil {
		return false, fmt.Errorf("store: creating temp claim: %w", err)
	}
	defer s.fs.Remove(tmp.Name())
	if _, err := tmp.Write(encodeEntry(data)); err != nil {
		tmp.Close()
		return false, fmt.Errorf("store: writing claim: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return false, fmt.Errorf("store: closing claim: %w", err)
	}
	if err := s.fs.Link(tmp.Name(), s.path(key)); err != nil {
		if errors.Is(err, fs.ErrExist) {
			return false, nil
		}
		return false, fmt.Errorf("store: publishing claim: %w", err)
	}
	s.writes.Add(1)
	return true, s.enforceBound()
}

// Delete removes the entry under key.  A missing entry is not an
// error; any other failure is reported.
func (s *Store) Delete(key string) error {
	if err := s.fs.Remove(s.path(key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: deleting entry: %w", err)
	}
	return nil
}

// enforceBound evicts oldest-first until the store fits maxBytes.
func (s *Store) enforceBound() error {
	if s.maxBytes <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, total, err := s.scan()
	if err != nil {
		return err
	}
	for i := 0; total > s.maxBytes && i < len(entries); i++ {
		if err := s.fs.Remove(entries[i].path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("store: evicting %s: %w", entries[i].path, err)
		}
		total -= entries[i].size
		s.evicted.Add(1)
	}
	return nil
}

type entryInfo struct {
	path  string
	size  int64
	mtime int64
}

// scan lists the store's entries sorted oldest first and their total
// size.
func (s *Store) scan() ([]entryInfo, int64, error) {
	dirents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("store: scanning %s: %w", s.dir, err)
	}
	var entries []entryInfo
	var total int64
	for _, de := range dirents {
		if de.IsDir() || filepath.Ext(de.Name()) != entryExt {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with eviction or purge
		}
		entries = append(entries, entryInfo{
			path:  filepath.Join(s.dir, de.Name()),
			size:  info.Size(),
			mtime: info.ModTime().UnixNano(),
		})
		total += info.Size()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime < entries[j].mtime })
	return entries, total, nil
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	entries, _, _ := s.scan()
	return len(entries)
}

// Size returns the total size in bytes of stored entries.
func (s *Store) Size() int64 {
	_, total, _ := s.scan()
	return total
}

// Disk reports the entry count and total bytes on disk in one
// directory scan — the metrics-scrape variant of Len+Size, which
// would otherwise scan twice per scrape.
func (s *Store) Disk() (entries int, bytes int64) {
	list, total, _ := s.scan()
	return len(list), total
}

// Purge removes every entry from the store.  Files that are not store
// entries are left alone.
func (s *Store) Purge() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, _, err := s.scan()
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := s.fs.Remove(e.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("store: purging %s: %w", e.path, err)
		}
	}
	return nil
}

// GetJSON reads the entry under key and decodes it into out,
// reporting whether a valid entry was found and decoded.  A payload
// that fails to decode counts as corrupt and is removed, like any
// other defective entry.
func GetJSON[T any](s *Store, key string, out *T) bool {
	if s == nil {
		return false
	}
	data, ok := s.Get(key)
	if !ok {
		return false
	}
	if err := json.Unmarshal(data, out); err != nil {
		// Checksum-valid but undecodable as T: a stale schema.  The
		// framing is deterministic, so guard the removal against a
		// concurrent rewrite the same way Get does.
		s.corrupt.Add(1)
		s.removeIfUnchanged(s.path(key), encodeEntry(data))
		return false
	}
	return true
}

// PutJSON encodes v and stores it under key.  A nil store is a no-op,
// so callers can thread an optional cache without branching.
func PutJSON[T any](s *Store, key string, v T) error {
	if s == nil {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: encoding entry: %w", err)
	}
	return s.Put(key, data)
}

// ClaimJSON encodes v and claims key with it, reporting whether this
// caller won the claim.  A nil store reports a win without persisting
// anything, so single-process callers need no branching.
func ClaimJSON[T any](s *Store, key string, v T) (bool, error) {
	if s == nil {
		return true, nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return false, fmt.Errorf("store: encoding claim: %w", err)
	}
	return s.Claim(key, data)
}

// GetOrComputeJSON returns the artefact for (namespace, cfg) through
// the store: decoded from disk on a hit, otherwise computed and
// written back — a write failure never fails the call, the computed
// value is still returned.  A nil store always computes.  This is the
// shared get-or-compute shape behind per-unit caching in the service
// and session caching in cmd/measure.
func GetOrComputeJSON[T any](s *Store, namespace string, cfg any, compute func() (T, error)) (T, error) {
	var zero T
	key, err := Key(namespace, cfg)
	if err != nil {
		return zero, err
	}
	var cached T
	if GetJSON(s, key, &cached) {
		return cached, nil
	}
	out, err := compute()
	if err != nil {
		return zero, err
	}
	PutJSON(s, key, out)
	return out, nil
}
