package store

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// faultFS wraps the real filesystem and injects one class of failure
// into temp-file writes or renames — the store-side counterpart of
// the chaos FS, kept dependency-free for this package's own tests.
type faultFS struct {
	FS
	writeErr  error // returned by File.Write on .put-* temps
	renameErr error // returned by Rename
	shortBy   int   // bytes silently dropped from each Write
}

func (f *faultFS) CreateTemp(dir, pattern string) (File, error) {
	file, err := f.FS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(pattern, ".put-") {
		return file, nil
	}
	return &faultFile{File: file, writeErr: f.writeErr, shortBy: f.shortBy}, nil
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if f.renameErr != nil {
		return f.renameErr
	}
	return f.FS.Rename(oldpath, newpath)
}

type faultFile struct {
	File
	writeErr error
	shortBy  int
}

// Write fails outright, or drops the tail while reporting a full
// write — the lying-disk case an entry checksum exists to catch.
func (f *faultFile) Write(p []byte) (int, error) {
	if f.writeErr != nil {
		return 0, f.writeErr
	}
	if f.shortBy > 0 && len(p) > f.shortBy {
		if _, err := f.File.Write(p[:len(p)-f.shortBy]); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	return f.File.Write(p)
}

// strayFiles lists everything in dir that is not a store entry —
// leaked temp files, if any.
func strayFiles(t *testing.T, dir string) []string {
	t.Helper()
	dirents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var stray []string
	for _, de := range dirents {
		if filepath.Ext(de.Name()) != entryExt {
			stray = append(stray, de.Name())
		}
	}
	return stray
}

func TestPutWriteErrorLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("injected write error")
	s, err := Open(dir, WithFS(&faultFS{FS: OS(), writeErr: boom}))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Put("k1", []byte("payload")); !errors.Is(err, boom) {
		t.Fatalf("Put error = %v, want injected write error", err)
	}
	if stray := strayFiles(t, dir); len(stray) != 0 {
		t.Fatalf("stray files after failed Put: %v", stray)
	}
	if n := s.Size(); n != 0 {
		t.Fatalf("Size after failed Put = %d, want 0 (nothing may count against MaxBytes)", n)
	}
	if s.Has("k1") {
		t.Fatal("entry exists after failed Put")
	}
}

func TestPutRenameErrorLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("injected rename error")
	ffs := &faultFS{FS: OS()}
	s, err := Open(dir, WithFS(ffs))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ffs.renameErr = boom // after Open's probe, before the first Put
	if err := s.Put("k1", []byte("payload")); !errors.Is(err, boom) {
		t.Fatalf("Put error = %v, want injected rename error", err)
	}
	if stray := strayFiles(t, dir); len(stray) != 0 {
		t.Fatalf("stray files after failed rename: %v", stray)
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("Len after failed rename = %d, want 0", n)
	}
}

func TestPutShortWriteReadsAsCorruptMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithFS(&faultFS{FS: OS(), shortBy: 4}))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := s.Put("k1", []byte("payload-bytes")); err != nil {
		t.Fatalf("Put: %v (a lying short write is invisible at write time)", err)
	}
	if _, ok := s.Get("k1"); ok {
		t.Fatal("Get served a truncated entry")
	}
	st := s.Stats()
	if st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
	}
	if _, err := os.Stat(filepath.Join(dir, "k1"+entryExt)); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("truncated entry not removed after corrupt read: %v", err)
	}
}

func TestOpenFailsWhenProbeCannotBeCreated(t *testing.T) {
	probeFail := &faultFS{FS: failingTempFS{}}
	if _, err := Open(t.TempDir(), WithFS(probeFail)); err == nil {
		t.Fatal("Open succeeded with an unwritable filesystem")
	}
}

type failingTempFS struct{ osDelegate }

func (failingTempFS) CreateTemp(dir, pattern string) (File, error) {
	return nil, errors.New("injected: disk full")
}

// osDelegate embeds the real FS so failingTempFS only overrides
// CreateTemp.
type osDelegate struct{}

func (osDelegate) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osDelegate) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osDelegate) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osDelegate) Link(oldpath, newpath string) error           { return os.Link(oldpath, newpath) }
func (osDelegate) Remove(name string) error                     { return os.Remove(name) }
func (osDelegate) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osDelegate) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
