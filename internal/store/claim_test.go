package store

import (
	"fmt"
	"sync"
	"testing"
)

func TestClaimExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	// Two independent Store handles on the same directory model two
	// processes (coordinators) racing on the same lease key.
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	const claimants = 16
	key, err := Key("job-lease/v1", "job-abc")
	if err != nil {
		t.Fatal(err)
	}
	var (
		wg   sync.WaitGroup
		wins sync.Map
		won  int
	)
	for i := 0; i < claimants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := s1
			if i%2 == 1 {
				s = s2
			}
			ok, err := s.Claim(key, []byte(fmt.Sprintf("owner-%d", i)))
			if err != nil {
				t.Errorf("Claim: %v", err)
				return
			}
			if ok {
				wins.Store(i, true)
			}
		}(i)
	}
	wg.Wait()
	wins.Range(func(_, _ any) bool { won++; return true })
	if won != 1 {
		t.Fatalf("%d claimants won, want exactly 1", won)
	}

	// The surviving entry is the winner's payload and reads back intact.
	data, ok := s1.Get(key)
	if !ok {
		t.Fatal("Get after Claim: miss")
	}
	var winner int
	wins.Range(func(k, _ any) bool { winner = k.(int); return false })
	if want := fmt.Sprintf("owner-%d", winner); string(data) != want {
		t.Fatalf("claimed payload = %q, want %q", data, want)
	}
}

func TestClaimAfterDeleteSucceeds(t *testing.T) {
	s := open(t)
	key, _ := Key("job-lease/v1", "job-x")
	if ok, err := s.Claim(key, []byte("a")); err != nil || !ok {
		t.Fatalf("first Claim = %v, %v; want win", ok, err)
	}
	if ok, err := s.Claim(key, []byte("b")); err != nil || ok {
		t.Fatalf("second Claim = %v, %v; want loss without error", ok, err)
	}
	if err := s.Delete(key); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Claim(key, []byte("c")); err != nil || !ok {
		t.Fatalf("Claim after Delete = %v, %v; want win", ok, err)
	}
	data, ok := s.Get(key)
	if !ok || string(data) != "c" {
		t.Fatalf("Get = %q, %v; want \"c\" (re-claimed payload)", data, ok)
	}
}

func TestDeleteMissingIsNoError(t *testing.T) {
	s := open(t)
	key, _ := Key("job-lease/v1", "never-claimed")
	if err := s.Delete(key); err != nil {
		t.Fatalf("Delete of missing entry: %v", err)
	}
}

func TestClaimJSONNilStore(t *testing.T) {
	won, err := ClaimJSON[string](nil, "anykey", "v")
	if err != nil || !won {
		t.Fatalf("ClaimJSON(nil store) = %v, %v; want win, nil", won, err)
	}
}
