package concentrix

import "repro/internal/fx8"

// Process is a Concentrix cluster job: a serial instruction stream
// (whose position persists across preemption), the cluster resource
// class it requested, and its private address space.
type Process struct {
	PID  int
	Name string

	// ClusterSize is the Concentrix resource class: the job runs on
	// the cluster with this many CEs (1 = detached serial execution).
	ClusterSize int

	// Serial is the job's serial thread; concurrent loops fan out
	// from OpCStart instructions within it.
	Serial fx8.Stream

	// Arrival is the cycle at which the job becomes runnable.
	Arrival uint64

	// Space is the job's demand-paged address space.
	Space *AddressSpace

	// Accounting.
	Started   bool
	Done      bool
	StartedAt uint64
	DoneAt    uint64

	// CPUCycles counts cycles the job held the cluster; WaitCycles
	// counts cycles it spent runnable but not running.  Together with
	// arrival and completion they characterize the job's treatment by
	// the scheduler — the software-level parameters the study's
	// conclusion points at.
	CPUCycles  uint64
	WaitCycles uint64

	// waitFrom stamps the cycle the process last entered the run
	// queue; dispatch credits the elapsed wait to WaitCycles.
	waitFrom uint64
}

// Turnaround returns the job's total time in system, or 0 before
// completion.
func (p *Process) Turnaround() uint64 {
	if !p.Done {
		return 0
	}
	return p.DoneAt - p.Arrival
}

// Kernel holds the continuously-logged operating system counters that
// the study's software instrumentation extracted — most importantly
// the CE page fault counts (user and system mode).
type Kernel struct {
	// PageFaultsUser counts faults taken by CE data references;
	// PageFaultsSystem counts faults charged to the kernel (process
	// loading and pager housekeeping).
	PageFaultsUser   uint64
	PageFaultsSystem uint64

	// ContextSwitches counts cluster process switches; JobsCompleted
	// counts finished jobs.
	ContextSwitches uint64
	JobsCompleted   uint64
}

// PageFaults returns the total CE page faults, the measure recorded by
// the study.
func (k *Kernel) PageFaults() uint64 {
	return k.PageFaultsUser + k.PageFaultsSystem
}

// VM adapts the scheduler's current process to the cluster's MMU
// hook: each cache lookup touches the process's address space, and a
// nonresident page stalls the CE for the fault service time while the
// kernel counter advances.
type VM struct {
	pageShift   uint // page size is a property of the mounted cluster; fxlint:keep
	faultCycles int
	kernel      *Kernel // wiring to the owning system's counters; fxlint:keep
	current     *Process

	// lastPage/lastOK memoize the most recently touched resident
	// page: touching a resident page mutates nothing in the address
	// space, so the run of references a CE makes within one page
	// (vector streams, hot code) skips the residency map entirely.
	// Residency can only change on a fault or a process switch, and
	// both clear the memo.
	lastPage uint32 // meaningless while !lastOK, which Reset clears; fxlint:keep
	lastOK   bool
}

// NewVM builds the virtual memory hook.  pageBytes must be a power of
// two; faultCycles is the CE stall per fault.
func NewVM(pageBytes, faultCycles int, kernel *Kernel) *VM {
	shift := uint(0)
	for 1<<shift < pageBytes {
		shift++
	}
	return &VM{pageShift: shift, faultCycles: faultCycles, kernel: kernel}
}

// SetCurrent switches the address space accesses resolve against.
func (v *VM) SetCurrent(p *Process) {
	v.current = p
	v.lastOK = false
}

// Reset detaches the hook from any process, clears the residency memo
// and installs a (possibly new) fault service time.  The page size —
// a property of the cluster the hook is mounted on — is kept.
func (v *VM) Reset(faultCycles int) {
	v.current = nil
	v.lastOK = false
	v.faultCycles = faultCycles
}

// Touch implements fx8.MMU.
func (v *VM) Touch(ce int, addr uint32) int {
	if v.current == nil || v.current.Space == nil {
		return 0
	}
	page := addr >> v.pageShift
	if v.lastOK && page == v.lastPage {
		return 0
	}
	if v.current.Space.Touch(page) {
		v.kernel.PageFaultsUser++
		// The fault evicted some resident page; only the page just
		// brought in is known resident now.
		v.lastPage = page
		v.lastOK = true
		return v.faultCycles
	}
	v.lastPage = page
	v.lastOK = true
	return 0
}
