package concentrix

import "testing"

func TestProcessAccounting(t *testing.T) {
	sys := NewSystem(quietCluster(), DefaultSysConfig())
	p := computeJob(1, 200, 3)
	sys.Submit(p)
	for i := 0; i < 100000 && !sys.Drained(); i++ {
		sys.Step()
	}
	if !p.Done {
		t.Fatal("job did not finish")
	}
	if p.CPUCycles == 0 {
		t.Error("CPU cycles not accounted")
	}
	if p.Turnaround() == 0 {
		t.Error("turnaround not accounted")
	}
	if p.Turnaround() < p.CPUCycles {
		t.Errorf("turnaround %d < CPU %d", p.Turnaround(), p.CPUCycles)
	}
}

func TestWaitCyclesAccumulateUnderContention(t *testing.T) {
	cfg := DefaultSysConfig()
	cfg.TimeSlice = 500
	sys := NewSystem(quietCluster(), cfg)
	a := computeJob(1, 2000, 2)
	b := computeJob(2, 2000, 2)
	sys.Submit(a)
	sys.Submit(b)
	for i := 0; i < 1000000 && !sys.Drained(); i++ {
		sys.Step()
	}
	if !a.Done || !b.Done {
		t.Fatal("jobs did not finish")
	}
	if b.WaitCycles == 0 {
		t.Error("second job should have waited in the run queue")
	}
}

func TestTurnaroundZeroBeforeDone(t *testing.T) {
	p := &Process{Arrival: 10}
	if p.Turnaround() != 0 {
		t.Error("turnaround should be 0 before completion")
	}
}
