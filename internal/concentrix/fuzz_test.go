package concentrix

import (
	"math/rand/v2"
	"testing"

	"repro/internal/fx8"
)

// FuzzJobMixes is the native fuzz entry over the scheduler's input
// space: the fuzzer drives the mix seed, job count, quantum and
// resident limit, so the scheduled CI fuzz job
// (.github/workflows/fuzz.yml) explores schedules the fixed-seed
// trials below never reach.  Under plain `go test` only the seed
// corpus runs.
func FuzzJobMixes(f *testing.F) {
	f.Add(uint64(0xD1CE), uint8(4), uint32(10_000), uint8(16))
	f.Add(uint64(7), uint8(1), uint32(150), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, nJobs uint8, slice uint32, limit uint8) {
		rng := rand.New(rand.NewPCG(seed, 0xCE))
		cfg := DefaultSysConfig()
		cfg.TimeSlice = int(slice%200_000) + 100
		cfg.ResidentLimit = int(limit%64) + 1
		sys := NewSystem(quietCluster(), cfg)

		n := int(nJobs%8) + 1
		jobs := make([]*Process, 0, n)
		for j := 0; j < n; j++ {
			p := computeJob(j+1, 50+rng.IntN(400), int32(1+rng.IntN(4)))
			p.ClusterSize = 1 + rng.IntN(8)
			p.Arrival = uint64(rng.IntN(50_000))
			jobs = append(jobs, p)
			sys.Submit(p)
		}
		for i := 0; i < 30_000_000 && !sys.Drained(); i++ {
			sys.Step()
		}
		if !sys.Drained() {
			t.Fatalf("seed %#x: system never drained", seed)
		}
		for _, p := range jobs {
			if !p.Done || p.DoneAt < p.Arrival || p.CPUCycles == 0 {
				t.Fatalf("seed %#x: job %d accounting wrong: %+v", seed, p.PID, p)
			}
		}
		if sys.Kernel.JobsCompleted != uint64(n) {
			t.Fatalf("seed %#x: completed %d of %d", seed, sys.Kernel.JobsCompleted, n)
		}
	})
}

// TestRandomJobMixesDrain submits randomized job mixes — varied
// cluster sizes, arrival bursts, loopy and serial programs, tiny
// quanta — and verifies the scheduler always drains them with correct
// accounting.
func TestRandomJobMixesDrain(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xD1, 0xCE))
	for trial := 0; trial < 15; trial++ {
		cfg := DefaultSysConfig()
		cfg.TimeSlice = 100 + rng.IntN(50_000)
		cfg.ResidentLimit = 1 + rng.IntN(64)
		cfg.FaultCycles = 50 + rng.IntN(1000)
		sys := NewSystem(quietCluster(), cfg)

		nJobs := 1 + rng.IntN(8)
		jobs := make([]*Process, 0, nJobs)
		for j := 0; j < nJobs; j++ {
			var p *Process
			if rng.IntN(2) == 0 {
				p = computeJob(j+1, 50+rng.IntN(500), int32(1+rng.IntN(4)))
			} else {
				trips := rng.IntN(30)
				body := 1 + rng.IntN(200)
				loop := &fx8.Loop{
					Trips: trips,
					Body: func(int) fx8.Stream {
						return &fx8.SliceStream{Instrs: []fx8.Instr{
							{Op: fx8.OpCompute, N: int32(body), IAddr: 0x8000},
							{Op: fx8.OpLoad, Addr: uint32(rng.Uint64() % (8 << 20)), IAddr: 0x8004},
						}}
					},
				}
				p = &Process{
					PID:         j + 1,
					ClusterSize: 1 + rng.IntN(8),
					Serial: &fx8.SliceStream{Instrs: []fx8.Instr{
						{Op: fx8.OpCompute, N: 10, IAddr: 0},
						{Op: fx8.OpCStart, Loop: loop, IAddr: 4},
						{Op: fx8.OpCompute, N: 10, IAddr: 8},
					}},
				}
			}
			p.Arrival = uint64(rng.IntN(100_000))
			jobs = append(jobs, p)
			sys.Submit(p)
		}

		for i := 0; i < 30_000_000 && !sys.Drained(); i++ {
			sys.Step()
		}
		if !sys.Drained() {
			t.Fatalf("trial %d: system never drained", trial)
		}
		for _, p := range jobs {
			if !p.Done {
				t.Fatalf("trial %d: job %d not done", trial, p.PID)
			}
			if p.DoneAt < p.Arrival {
				t.Fatalf("trial %d: job %d finished before arriving", trial, p.PID)
			}
			if p.CPUCycles == 0 {
				t.Fatalf("trial %d: job %d has no CPU time", trial, p.PID)
			}
		}
		if sys.Kernel.JobsCompleted != uint64(nJobs) {
			t.Fatalf("trial %d: completed %d of %d", trial, sys.Kernel.JobsCompleted, nJobs)
		}
	}
}
