package concentrix

import (
	"math/rand/v2"
	"testing"

	"repro/internal/fx8"
)

// TestRandomJobMixesDrain submits randomized job mixes — varied
// cluster sizes, arrival bursts, loopy and serial programs, tiny
// quanta — and verifies the scheduler always drains them with correct
// accounting.
func TestRandomJobMixesDrain(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xD1, 0xCE))
	for trial := 0; trial < 15; trial++ {
		cfg := DefaultSysConfig()
		cfg.TimeSlice = 100 + rng.IntN(50_000)
		cfg.ResidentLimit = 1 + rng.IntN(64)
		cfg.FaultCycles = 50 + rng.IntN(1000)
		sys := NewSystem(quietCluster(), cfg)

		nJobs := 1 + rng.IntN(8)
		jobs := make([]*Process, 0, nJobs)
		for j := 0; j < nJobs; j++ {
			var p *Process
			if rng.IntN(2) == 0 {
				p = computeJob(j+1, 50+rng.IntN(500), int32(1+rng.IntN(4)))
			} else {
				trips := rng.IntN(30)
				body := 1 + rng.IntN(200)
				loop := &fx8.Loop{
					Trips: trips,
					Body: func(int) fx8.Stream {
						return &fx8.SliceStream{Instrs: []fx8.Instr{
							{Op: fx8.OpCompute, N: int32(body), IAddr: 0x8000},
							{Op: fx8.OpLoad, Addr: uint32(rng.Uint64() % (8 << 20)), IAddr: 0x8004},
						}}
					},
				}
				p = &Process{
					PID:         j + 1,
					ClusterSize: 1 + rng.IntN(8),
					Serial: &fx8.SliceStream{Instrs: []fx8.Instr{
						{Op: fx8.OpCompute, N: 10, IAddr: 0},
						{Op: fx8.OpCStart, Loop: loop, IAddr: 4},
						{Op: fx8.OpCompute, N: 10, IAddr: 8},
					}},
				}
			}
			p.Arrival = uint64(rng.IntN(100_000))
			jobs = append(jobs, p)
			sys.Submit(p)
		}

		for i := 0; i < 30_000_000 && !sys.Drained(); i++ {
			sys.Step()
		}
		if !sys.Drained() {
			t.Fatalf("trial %d: system never drained", trial)
		}
		for _, p := range jobs {
			if !p.Done {
				t.Fatalf("trial %d: job %d not done", trial, p.PID)
			}
			if p.DoneAt < p.Arrival {
				t.Fatalf("trial %d: job %d finished before arriving", trial, p.PID)
			}
			if p.CPUCycles == 0 {
				t.Fatalf("trial %d: job %d has no CPU time", trial, p.PID)
			}
		}
		if sys.Kernel.JobsCompleted != uint64(nJobs) {
			t.Fatalf("trial %d: completed %d of %d", trial, sys.Kernel.JobsCompleted, nJobs)
		}
	}
}
