// Package concentrix is the operating-system layer above the fx8
// cluster: processes with demand-paged virtual memory, a cluster
// scheduler with Concentrix-style resource classes (a job runs on the
// cluster with 1..8 CEs), and the kernel event counters whose values
// the study's software instrumentation extracted.
package concentrix

// AddressSpace tracks the resident pages of one process.  The FX/8
// organizes virtual memory as 1024 segments of 1024 pages of 4 KB; for
// fault behaviour only residency matters, so the model is a resident
// set with FIFO (clock-like) eviction at a configurable limit.
type AddressSpace struct {
	resident map[uint32]int // page -> index in order ring
	order    []uint32       // FIFO of resident pages
	head     int
	limit    int

	// Faults counts the faults this address space generated.
	Faults uint64
}

// NewAddressSpace returns an address space allowed up to limit
// resident pages (limit must be positive).
func NewAddressSpace(limit int) *AddressSpace {
	if limit < 1 {
		limit = 1
	}
	return &AddressSpace{
		resident: make(map[uint32]int, limit),
		limit:    limit,
	}
}

// Resident reports whether page is resident.
func (a *AddressSpace) Resident(page uint32) bool {
	_, ok := a.resident[page]
	return ok
}

// ResidentCount returns the number of resident pages.
func (a *AddressSpace) ResidentCount() int { return len(a.resident) }

// Touch references page, returning fault=true when the page had to be
// brought in (possibly evicting the oldest resident page).
func (a *AddressSpace) Touch(page uint32) (fault bool) {
	if _, ok := a.resident[page]; ok {
		return false
	}
	a.Faults++
	if len(a.resident) >= a.limit {
		// Evict the oldest page.
		victim := a.order[a.head]
		delete(a.resident, victim)
		a.resident[page] = a.head
		a.order[a.head] = page
		a.head = (a.head + 1) % a.limit
		return true
	}
	a.resident[page] = len(a.order)
	a.order = append(a.order, page)
	return true
}
