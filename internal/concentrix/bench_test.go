package concentrix

import (
	"testing"
)

// BenchmarkSystemStep measures one operating-system scheduling tick
// over a contended run queue: arrival admission, slice accounting,
// preemption checks and the cluster cycle underneath.  make bench
// records it in BENCH_concentrix.json for the CI regression gate.
func BenchmarkSystemStep(b *testing.B) {
	cfg := DefaultSysConfig()
	cfg.TimeSlice = 2_000 // frequent quantum expiry exercises the scheduler
	sys := NewSystem(quietCluster(), cfg)
	submit := func() {
		for j := 0; j < 4; j++ {
			sys.Submit(computeJob(j+1, 400, 3))
		}
	}
	submit()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sys.Drained() {
			b.StopTimer()
			submit()
			b.StartTimer()
		}
		sys.Step()
	}
}

// BenchmarkVMTouch measures the per-cache-lookup virtual memory check
// with a process whose working set cycles through its resident limit.
func BenchmarkVMTouch(b *testing.B) {
	k := &Kernel{}
	vm := NewVM(4<<10, 800, k)
	p := &Process{PID: 1, Space: NewAddressSpace(64)}
	vm.SetCurrent(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Mostly same-page hits with periodic strides — the access
		// shape of vectorized code.
		addr := uint32(i) * 8 % (1 << 20)
		vm.Touch(int(addr)&7, addr)
	}
}
