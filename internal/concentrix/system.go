package concentrix

import (
	"sort"

	"repro/internal/fx8"
)

// SysConfig parameterizes the operating system layer.
type SysConfig struct {
	// TimeSlice is the scheduling quantum in cycles.  A running job
	// is preempted at the first serial point after its slice expires
	// (cluster jobs are never descheduled inside a concurrent loop).
	TimeSlice int

	// FaultCycles is the CE stall per page fault.
	FaultCycles int

	// ResidentLimit is the per-process resident set limit in pages.
	ResidentLimit int

	// LoadFaults is the number of system-mode faults charged when a
	// process is first scheduled (code and stack load).
	LoadFaults int
}

// DefaultSysConfig returns the configuration used by the measurement
// experiments.
func DefaultSysConfig() SysConfig {
	return SysConfig{
		TimeSlice:     300000,
		FaultCycles:   800,
		ResidentLimit: 512,
		LoadFaults:    8,
	}
}

// System assembles the cluster and the operating system: a run queue
// of cluster jobs, future arrivals, the VM hook and kernel counters.
// Step advances the machine one cycle under OS control.
type System struct {
	// The cluster is owned by the caller, which resets it (with the
	// session seed) before resetting the system over it.
	Cluster *fx8.Cluster // fxlint:keep
	Kernel  *Kernel
	VM      *VM

	cfg     SysConfig
	pending []*Process // sorted by arrival
	runq    []*Process
	current *Process

	sliceLeft int

	// IdleCycles counts cycles with no cluster job installed.
	IdleCycles uint64
}

// NewSystem boots an OS over the given cluster.
func NewSystem(cl *fx8.Cluster, cfg SysConfig) *System {
	k := &Kernel{}
	vm := NewVM(cl.Config().PageBytes, cfg.FaultCycles, k)
	cl.SetMMU(vm)
	return &System{Cluster: cl, Kernel: k, VM: vm, cfg: cfg}
}

// Reset returns the system to the state NewSystem would produce over
// the same (already reset) cluster, reusing the queue arrays, the
// kernel and the VM hook.  cfg replaces the scheduling configuration,
// so one reused system can serve sweep points that vary OS parameters.
// Submitted and running jobs are dropped; kernel counters and the VM
// residency memo are cleared.
func (s *System) Reset(cfg SysConfig) {
	s.cfg = cfg
	s.pending = s.pending[:0]
	s.runq = s.runq[:0]
	s.current = nil
	s.sliceLeft = 0
	s.IdleCycles = 0
	*s.Kernel = Kernel{}
	s.VM.Reset(cfg.FaultCycles)
}

// Submit queues a job for execution at its arrival time.  Jobs without
// an address space get one at the configured resident limit.
func (s *System) Submit(p *Process) {
	if p.Space == nil {
		p.Space = NewAddressSpace(s.cfg.ResidentLimit)
	}
	s.pending = append(s.pending, p)
	sort.SliceStable(s.pending, func(i, j int) bool {
		return s.pending[i].Arrival < s.pending[j].Arrival
	})
}

// Step runs the scheduler and advances the cluster one cycle.  Run
// queue waiting is accounted lazily: enqueue stamps the cycle and
// dispatch credits the difference, so the per-cycle path never walks
// the queue (the totals are identical to per-cycle increments).
func (s *System) Step() {
	s.schedule()
	if s.current == nil {
		s.IdleCycles++
	} else {
		s.current.CPUCycles++
		if s.sliceLeft > 0 {
			s.sliceLeft--
		}
	}
	s.Cluster.Step()
}

// StepN executes n cycles.
func (s *System) StepN(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// schedule admits arrivals, reaps the finished job, rotates on slice
// expiry, and dispatches the head of the run queue.
func (s *System) schedule() {
	now := s.Cluster.Cycle()
	for len(s.pending) > 0 && s.pending[0].Arrival <= now {
		s.pending[0].waitFrom = now
		s.runq = append(s.runq, s.pending[0])
		s.pending = s.pending[1:]
	}

	if s.current != nil && s.Cluster.Idle() {
		// Serial stream exhausted: the job finished.
		s.current.Done = true
		s.current.DoneAt = now
		s.current = nil
		s.Kernel.JobsCompleted++
	}

	if s.current != nil && s.sliceLeft == 0 && len(s.runq) > 0 {
		// Quantum expired and another job waits: preempt at the next
		// serial point.
		if stream, ok := s.Cluster.Preempt(); ok {
			s.current.Serial = stream
			s.current.waitFrom = now
			s.runq = append(s.runq, s.current)
			s.current = nil
			s.Kernel.ContextSwitches++
		}
	}

	if s.current == nil && len(s.runq) > 0 {
		p := s.runq[0]
		s.runq = s.runq[1:]
		p.WaitCycles += now - p.waitFrom
		s.dispatch(p, now)
	}
}

func (s *System) dispatch(p *Process, now uint64) {
	if !p.Started {
		p.Started = true
		p.StartedAt = now
		s.Kernel.PageFaultsSystem += uint64(s.cfg.LoadFaults)
	}
	s.VM.SetCurrent(p)
	if err := s.Cluster.Run(p.Serial, p.ClusterSize); err != nil {
		// Should be impossible: dispatch only runs on an idle
		// cluster.
		panic(err)
	}
	s.current = p
	s.sliceLeft = s.cfg.TimeSlice
}

// Current returns the running job, or nil when the cluster is idle.
func (s *System) Current() *Process { return s.current }

// QueueLen returns the number of runnable (not running) jobs.
func (s *System) QueueLen() int { return len(s.runq) }

// PendingLen returns the number of jobs not yet arrived.
func (s *System) PendingLen() int { return len(s.pending) }

// Drained reports whether every submitted job has completed.
func (s *System) Drained() bool {
	return s.current == nil && len(s.runq) == 0 && len(s.pending) == 0
}
