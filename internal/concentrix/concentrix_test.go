package concentrix

import (
	"testing"

	"repro/internal/fx8"
)

func TestAddressSpaceTouch(t *testing.T) {
	a := NewAddressSpace(3)
	if !a.Touch(1) {
		t.Fatal("first touch should fault")
	}
	if a.Touch(1) {
		t.Fatal("second touch should be resident")
	}
	if !a.Resident(1) || a.Resident(2) {
		t.Fatal("residency wrong")
	}
	if a.Faults != 1 {
		t.Fatalf("faults = %d", a.Faults)
	}
}

func TestAddressSpaceEviction(t *testing.T) {
	a := NewAddressSpace(2)
	a.Touch(1)
	a.Touch(2)
	if a.ResidentCount() != 2 {
		t.Fatal("two pages should be resident")
	}
	a.Touch(3) // evicts page 1 (FIFO)
	if a.Resident(1) {
		t.Fatal("page 1 should have been evicted")
	}
	if !a.Resident(2) || !a.Resident(3) {
		t.Fatal("pages 2 and 3 should be resident")
	}
	if a.ResidentCount() != 2 {
		t.Fatalf("resident count = %d, want 2", a.ResidentCount())
	}
	// Re-touching the evicted page faults again.
	if !a.Touch(1) {
		t.Fatal("evicted page should fault on re-touch")
	}
}

func TestAddressSpaceEvictionCycles(t *testing.T) {
	// Stream many pages through a small space; residency never
	// exceeds the limit and every new page faults.
	a := NewAddressSpace(4)
	for p := uint32(0); p < 100; p++ {
		if !a.Touch(p) {
			t.Fatalf("streaming page %d should fault", p)
		}
		if a.ResidentCount() > 4 {
			t.Fatalf("resident count %d exceeds limit", a.ResidentCount())
		}
	}
	if a.Faults != 100 {
		t.Fatalf("faults = %d", a.Faults)
	}
}

func TestAddressSpaceMinimumLimit(t *testing.T) {
	a := NewAddressSpace(0)
	a.Touch(1)
	a.Touch(2)
	if a.ResidentCount() != 1 {
		t.Fatal("limit should clamp to 1")
	}
}

func TestVMFaultCounting(t *testing.T) {
	k := &Kernel{}
	vm := NewVM(4096, 500, k)
	p := &Process{PID: 1, Space: NewAddressSpace(8)}
	vm.SetCurrent(p)

	if s := vm.Touch(0, 0x1000); s != 500 {
		t.Fatalf("first touch stall = %d, want 500", s)
	}
	if s := vm.Touch(0, 0x1FFF); s != 0 {
		t.Fatalf("same-page touch stall = %d, want 0", s)
	}
	if s := vm.Touch(0, 0x2000); s != 500 {
		t.Fatalf("next-page stall = %d", s)
	}
	if k.PageFaultsUser != 2 {
		t.Fatalf("user faults = %d", k.PageFaultsUser)
	}
}

func TestVMNoCurrentProcess(t *testing.T) {
	k := &Kernel{}
	vm := NewVM(4096, 500, k)
	if s := vm.Touch(0, 0x1000); s != 0 {
		t.Fatal("no current process should mean no faults")
	}
	if k.PageFaults() != 0 {
		t.Fatal("no counters should advance")
	}
}

func TestKernelPageFaultsSum(t *testing.T) {
	k := &Kernel{PageFaultsUser: 3, PageFaultsSystem: 4}
	if k.PageFaults() != 7 {
		t.Fatalf("PageFaults = %d", k.PageFaults())
	}
}

func quietCluster() *fx8.Cluster {
	cfg := fx8.DefaultConfig()
	cfg.NumIP = 0
	return fx8.New(cfg)
}

func computeJob(pid, instrs int, cycles int32) *Process {
	s := &fx8.SliceStream{}
	for i := 0; i < instrs; i++ {
		s.Instrs = append(s.Instrs, fx8.Instr{Op: fx8.OpCompute, N: cycles, IAddr: uint32(i * 4)})
	}
	return &Process{PID: pid, Name: "compute", ClusterSize: 8, Serial: s}
}

func TestSystemRunsSingleJob(t *testing.T) {
	sys := NewSystem(quietCluster(), DefaultSysConfig())
	p := computeJob(1, 50, 2)
	sys.Submit(p)
	for i := 0; i < 100000 && !sys.Drained(); i++ {
		sys.Step()
	}
	if !sys.Drained() {
		t.Fatal("job never completed")
	}
	if !p.Done || !p.Started {
		t.Fatal("job flags not set")
	}
	if sys.Kernel.JobsCompleted != 1 {
		t.Fatalf("jobs completed = %d", sys.Kernel.JobsCompleted)
	}
	if sys.Kernel.PageFaultsSystem == 0 {
		t.Error("process load should charge system faults")
	}
}

func TestSystemArrivalTimes(t *testing.T) {
	sys := NewSystem(quietCluster(), DefaultSysConfig())
	late := computeJob(2, 10, 1)
	late.Arrival = 5000
	sys.Submit(late)

	// Before arrival the system idles.
	sys.StepN(1000)
	if sys.Current() != nil {
		t.Fatal("job should not run before arrival")
	}
	if sys.IdleCycles == 0 {
		t.Fatal("idle cycles should accumulate")
	}
	sys.StepN(10000)
	if !late.Done {
		t.Fatal("job should have completed after arrival")
	}
}

func TestSystemSubmitOrdering(t *testing.T) {
	sys := NewSystem(quietCluster(), DefaultSysConfig())
	b := computeJob(2, 5, 1)
	b.Arrival = 100
	a := computeJob(1, 5, 1)
	a.Arrival = 50
	sys.Submit(b)
	sys.Submit(a)
	if sys.PendingLen() != 2 {
		t.Fatal("both jobs pending")
	}
	for i := 0; i < 50000 && !sys.Drained(); i++ {
		sys.Step()
	}
	if !a.Done || !b.Done {
		t.Fatal("both jobs should complete")
	}
	if a.StartedAt > b.StartedAt {
		t.Error("earlier arrival should start first")
	}
}

func TestSystemRoundRobinPreemption(t *testing.T) {
	cfg := DefaultSysConfig()
	cfg.TimeSlice = 200
	sys := NewSystem(quietCluster(), cfg)
	long1 := computeJob(1, 5000, 2)
	long2 := computeJob(2, 5000, 2)
	sys.Submit(long1)
	sys.Submit(long2)
	// Run until both have started: requires a context switch before
	// job 1 finishes.
	for i := 0; i < 50000 && !long2.Started; i++ {
		sys.Step()
	}
	if !long2.Started {
		t.Fatal("second job never started; preemption broken")
	}
	if long1.Done {
		t.Fatal("first job should not have finished before second started")
	}
	if sys.Kernel.ContextSwitches == 0 {
		t.Fatal("context switches not counted")
	}
	for i := 0; i < 2000000 && !sys.Drained(); i++ {
		sys.Step()
	}
	if !long1.Done || !long2.Done {
		t.Fatal("both jobs should eventually complete")
	}
}

func TestSystemNoPreemptionInsideLoop(t *testing.T) {
	cfg := DefaultSysConfig()
	cfg.TimeSlice = 10 // tiny quantum
	sys := NewSystem(quietCluster(), cfg)

	loop := &fx8.Loop{
		Trips: 16,
		Body: func(iter int) fx8.Stream {
			return &fx8.SliceStream{Instrs: []fx8.Instr{
				{Op: fx8.OpCompute, N: 500, IAddr: 0x8000},
			}}
		},
	}
	loopy := &Process{PID: 1, ClusterSize: 8, Serial: &fx8.SliceStream{Instrs: []fx8.Instr{
		{Op: fx8.OpCStart, Loop: loop, IAddr: 0},
		{Op: fx8.OpCompute, N: 5, IAddr: 4},
	}}}
	other := computeJob(2, 10, 1)
	sys.Submit(loopy)
	sys.Submit(other)

	// While the loop is running the loopy job must stay installed
	// even though its quantum expired.
	enteredLoop := false
	for i := 0; i < 200000 && !sys.Drained(); i++ {
		sys.Step()
		if sys.Cluster.InConcurrentLoop() {
			enteredLoop = true
			if sys.Current() != loopy {
				t.Fatal("job switched during a concurrent loop")
			}
		}
	}
	if !enteredLoop {
		t.Fatal("loop never entered")
	}
	if !loopy.Done || !other.Done {
		t.Fatal("both jobs should complete")
	}
}

func TestSystemPageFaultsFromWorkload(t *testing.T) {
	cfg := DefaultSysConfig()
	cfg.ResidentLimit = 4
	cfg.FaultCycles = 100
	sys := NewSystem(quietCluster(), cfg)

	// A job streaming loads across many pages must fault repeatedly.
	s := &fx8.SliceStream{}
	for i := 0; i < 64; i++ {
		s.Instrs = append(s.Instrs, fx8.Instr{
			Op: fx8.OpLoad, Addr: uint32(i * 4096), IAddr: uint32(i % 16 * 4),
		})
	}
	p := &Process{PID: 1, ClusterSize: 8, Serial: s}
	sys.Submit(p)
	for i := 0; i < 500000 && !sys.Drained(); i++ {
		sys.Step()
	}
	if !p.Done {
		t.Fatal("job did not finish")
	}
	if sys.Kernel.PageFaultsUser < 60 {
		t.Fatalf("user faults = %d, want >= 60", sys.Kernel.PageFaultsUser)
	}
}

func TestSystemDefaultAddressSpace(t *testing.T) {
	sys := NewSystem(quietCluster(), DefaultSysConfig())
	p := computeJob(1, 5, 1)
	sys.Submit(p)
	if p.Space == nil {
		t.Fatal("Submit should provision an address space")
	}
}
