package remote

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// sheddingBackend answers 429 + Retry-After: 1 to every request —
// fx8d's admission-control shed — counting the hits.
func sheddingBackend(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"code":"shed","message":"server at capacity"}`, http.StatusTooManyRequests)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// The regression this pins: a shedding backend advertises Retry-After
// and must stop receiving units for that window, instead of being
// rerouted into the very queue it just shed from (and instead of
// being quarantined as dead — shedding is overload, not sickness).
func TestShedBackendStopsReceivingUnitsForRetryAfterWindow(t *testing.T) {
	t.Parallel()
	var shedHits, servedGood atomic.Int64
	shed := sheddingBackend(t, &shedHits)
	good := echoBackend(t, &servedGood)

	c := NewClient(Config{Backends: []string{shed.URL, good.URL}}, echoLocal)
	for i := 0; i < 12; i++ {
		res, err := c.RunUnit(context.Background(), echoUnit{X: i})
		if err != nil {
			t.Fatalf("unit %d: %v", i, err)
		}
		if res.Y != i*2 {
			t.Fatalf("unit %d: result %+v", i, res)
		}
	}

	// Twelve sequential units well inside the 1s window: the shedding
	// backend is hit once (the request that learned of the shed) and
	// then left alone; every unit still succeeds via the healthy one.
	if n := shedHits.Load(); n != 1 {
		t.Errorf("shedding backend received %d requests inside the Retry-After window, want 1", n)
	}
	if n := servedGood.Load(); n != 12 {
		t.Errorf("healthy backend served %d units, want 12", n)
	}
	st := c.Stats()
	if st.Fallbacks != 0 {
		t.Errorf("fallbacks = %d, want 0", st.Fallbacks)
	}
	for _, b := range st.Backends {
		if b.Addr == shed.URL && b.Dead {
			t.Error("shedding backend was quarantined as dead; a shed is not a failure")
		}
	}
}

// A fleet that is entirely shedding is servable, just not yet: the
// client must wait out the advertised window under its retry policy
// and run the unit remotely, not silently fall back to local compute.
func TestClientWaitsOutShedWhenEveryBackendIsShedding(t *testing.T) {
	t.Parallel()
	var served atomic.Int64
	shedFirst := true
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if shedFirst {
			shedFirst = false
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"code":"shed","message":"server at capacity"}`, http.StatusTooManyRequests)
			return
		}
		served.Add(1)
		var u echoUnit
		json.NewDecoder(r.Body).Decode(&u)
		res, _ := echoLocal(u)
		json.NewEncoder(w).Encode(res)
	}))
	t.Cleanup(srv.Close)

	c := NewClient(Config{Backends: []string{srv.URL}}, echoLocal)
	start := time.Now()
	res, err := c.RunUnit(context.Background(), echoUnit{X: 21})
	if err != nil {
		t.Fatal(err)
	}
	if res.Y != 42 {
		t.Fatalf("result = %+v", res)
	}
	if served.Load() != 1 {
		t.Fatalf("backend served %d units after recovery, want 1", served.Load())
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Errorf("unit completed in %v, want >= ~1s (the advertised Retry-After)", elapsed)
	}
	st := c.Stats()
	if st.Fallbacks != 0 {
		t.Errorf("fallbacks = %d, want 0 — the unit was servable after the window", st.Fallbacks)
	}
	if st.Retry.Retries == 0 || st.Retry.BackoffWaits == 0 {
		t.Errorf("retry outcomes not booked: %+v", st.Retry)
	}
}

func TestParseRetryAfter(t *testing.T) {
	t.Parallel()
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"1", time.Second},
		{" 2 ", 2 * time.Second},
		{"0", 0},
		{"", time.Second},
		{"soon", time.Second},
		{"-3", time.Second},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
