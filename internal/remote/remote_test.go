package remote

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// echoUnit / echoResult are a trivial unit type for exercising the
// generic client without booting simulators.
type echoUnit struct {
	X int `json:"x"`
}

type echoResult struct {
	Y int `json:"y"`
}

func echoLocal(u echoUnit) (echoResult, error) {
	return echoResult{Y: u.X * 2}, nil
}

// echoBackend serves the echo computation, counting requests.
func echoBackend(t *testing.T, served *atomic.Int64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var u echoUnit
		if err := json.NewDecoder(r.Body).Decode(&u); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if served != nil {
			served.Add(1)
		}
		res, _ := echoLocal(u)
		json.NewEncoder(w).Encode(res)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func units(n int) []echoUnit {
	out := make([]echoUnit, n)
	for i := range out {
		out[i] = echoUnit{X: i}
	}
	return out
}

func checkResults(t *testing.T, got []echoResult) {
	t.Helper()
	for i, r := range got {
		if r.Y != i*2 {
			t.Fatalf("out[%d] = %+v, want Y=%d", i, r, i*2)
		}
	}
}

func TestClientShardsAcrossBackends(t *testing.T) {
	t.Parallel()
	var servedA, servedB atomic.Int64
	a := echoBackend(t, &servedA)
	b := echoBackend(t, &servedB)
	c := NewClient(Config{Backends: []string{a.URL, b.URL}}, echoLocal)

	got, err := engine.RunAll(context.Background(), 0, units(24), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, got)
	st := c.Stats()
	if st.Fallbacks != 0 {
		t.Errorf("fallbacks = %d, want 0 with live backends", st.Fallbacks)
	}
	if servedA.Load() == 0 || servedB.Load() == 0 {
		t.Errorf("work not sharded: backend A served %d, B served %d",
			servedA.Load(), servedB.Load())
	}
	if n := servedA.Load() + servedB.Load(); n < 24 {
		t.Errorf("backends served %d units, want >= 24", n)
	}
}

func TestClientReroutesAroundFailingBackend(t *testing.T) {
	t.Parallel()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "backend on fire", http.StatusInternalServerError)
	}))
	t.Cleanup(bad.Close)
	var servedGood atomic.Int64
	good := echoBackend(t, &servedGood)

	c := NewClient(Config{
		Backends:    []string{bad.URL, good.URL},
		MaxFailures: 2,
	}, echoLocal)
	got, err := engine.RunAll(context.Background(), 4, units(16), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, got)
	st := c.Stats()
	var deadSeen bool
	for _, b := range st.Backends {
		if b.Addr == bad.URL {
			deadSeen = b.Dead
		}
	}
	if !deadSeen {
		t.Errorf("failing backend not marked dead: %+v", st.Backends)
	}
	if servedGood.Load() != 16 {
		t.Errorf("good backend served %d units, want all 16 rerouted", servedGood.Load())
	}
}

func TestClientFallsBackToLocalWhenAllBackendsDead(t *testing.T) {
	t.Parallel()
	// A closed server: every connection is refused.
	dead := httptest.NewServer(http.NotFoundHandler())
	addr := dead.URL
	dead.Close()

	c := NewClient(Config{Backends: []string{addr}, MaxFailures: 1}, echoLocal)
	got, err := engine.RunAll(context.Background(), 2, units(6), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, got)
	if st := c.Stats(); st.Fallbacks != 6 {
		t.Errorf("fallbacks = %d, want all 6 units computed locally", st.Fallbacks)
	}
}

func TestClientNoBackendsComputesLocally(t *testing.T) {
	t.Parallel()
	c := NewClient(Config{}, echoLocal)
	got, err := engine.RunAll(context.Background(), 2, units(4), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, got)
	if st := c.Stats(); st.Fallbacks != 4 {
		t.Errorf("fallbacks = %d, want 4", st.Fallbacks)
	}
}

func TestClientHedgesSlowBackend(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the server only notices a client
		// disconnect (and cancels r.Context()) once the request has
		// been consumed.
		var u echoUnit
		json.NewDecoder(r.Body).Decode(&u)
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		res, _ := echoLocal(u)
		json.NewEncoder(w).Encode(res)
	}))
	t.Cleanup(func() { close(release); slow.Close() })
	fast := echoBackend(t, nil)

	c := NewClient(Config{
		Backends:   []string{slow.URL, fast.URL},
		HedgeAfter: 20 * time.Millisecond,
	}, echoLocal)
	// One unit at a time: whichever backend the unit lands on first,
	// a stalled attempt must be hedged to the other and finish fast.
	start := time.Now()
	got, err := engine.RunAll(context.Background(), 1, units(4), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, got)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("hedged run took %v", elapsed)
	}
	if st := c.Stats(); st.Hedges == 0 {
		t.Error("no hedges fired against a stalled backend")
	}
}

func TestClientRespectsContextCancel(t *testing.T) {
	t.Parallel()
	stallDone := make(chan struct{})
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) // let the server watch for disconnect
		select {
		case <-r.Context().Done():
		case <-stallDone:
		}
	}))
	t.Cleanup(func() { close(stallDone); stall.Close() })
	c := NewClient(Config{Backends: []string{stall.URL}, HedgeAfter: time.Hour}, echoLocal)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.RunUnit(ctx, echoUnit{X: 1}); err == nil {
		t.Fatal("want context error from canceled unit")
	}
}

func TestParseBackends(t *testing.T) {
	t.Parallel()
	if got := ParseBackends(""); got != nil {
		t.Errorf("ParseBackends(\"\") = %v, want nil", got)
	}
	got := ParseBackends(" a:1, b:2 ,,c:3 ")
	want := []string{"a:1", "b:2", "c:3"}
	if len(got) != len(want) {
		t.Fatalf("ParseBackends = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ParseBackends[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRunnerConstructorsNilForEmpty(t *testing.T) {
	t.Parallel()
	if r := StudyRunner(nil); r != nil {
		t.Error("StudyRunner(nil) should be nil (local compute)")
	}
	if r := SweepRunner(nil); r != nil {
		t.Error("SweepRunner(nil) should be nil (local compute)")
	}
	if StudyRunner([]string{"h:1"}) == nil || SweepRunner([]string{"h:1"}) == nil {
		t.Error("constructors returned nil for a non-empty backend list")
	}
}

func TestPickSurvivesCounterWrap(t *testing.T) {
	t.Parallel()
	var served atomic.Int64
	a := echoBackend(t, &served)
	b := echoBackend(t, &served)
	c := NewClient(Config{Backends: []string{a.URL, b.URL}}, echoLocal)
	// Wind the round-robin counter to just below the uint64 wrap: the
	// old pick converted before reducing (int(rr.Add(1)) % n), so a
	// counter past 2^63 — or 2^31 on 32-bit ints — went negative and
	// indexed backends[-1].  Exercise picks across the wrap itself.
	c.rr.Store(^uint64(0) - 10)
	for i := 0; i < 25; i++ {
		res, err := c.RunUnit(context.Background(), echoUnit{X: i})
		if err != nil {
			t.Fatalf("unit %d across counter wrap: %v", i, err)
		}
		if res.Y != i*2 {
			t.Fatalf("unit %d = %+v, want Y=%d", i, res, i*2)
		}
	}
	if st := c.Stats(); st.Fallbacks != 0 {
		t.Errorf("fallbacks = %d, want 0 across the counter wrap", st.Fallbacks)
	}
}

// stallingBackend serves echo responses only after release is closed,
// watching for client disconnects while stalled.
func stallingBackend(t *testing.T, release chan struct{}) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var u echoUnit
		json.NewDecoder(r.Body).Decode(&u)
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		res, _ := echoLocal(u)
		json.NewEncoder(w).Encode(res)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestHedgeTimerFiresOncePerLaunch(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	slowA := stallingBackend(t, release)
	slowB := stallingBackend(t, release)

	c := NewClient(Config{
		Backends:   []string{slowA.URL, slowB.URL},
		HedgeAfter: 20 * time.Millisecond,
	}, echoLocal)
	done := make(chan error, 1)
	go func() {
		res, err := c.RunUnit(context.Background(), echoUnit{X: 3})
		if err == nil && res.Y != 6 {
			err = fmt.Errorf("res = %+v, want Y=6", res)
		}
		done <- err
	}()
	// Both backends stall well past many hedge periods.  The first
	// launch arms the hedge clock; its one wakeup hedges onto the
	// second backend and re-arms; that attempt's one wakeup finds no
	// untried backend and disarms for good.  The old loop re-armed the
	// timer on every iteration of the wait, waking every HedgeAfter
	// forever — ~15 wakeups in this window instead of 2.
	time.Sleep(300 * time.Millisecond)
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if wakes := c.hedgeWake.Load(); wakes != 2 {
		t.Errorf("hedge timer woke %d times, want exactly 2 (one per launch)", wakes)
	}
	if st := c.Stats(); st.Hedges != 1 {
		t.Errorf("hedges = %d, want exactly 1", st.Hedges)
	}
}

func TestHedgeTimerDisarmsWithNoBackendLeft(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	slow := stallingBackend(t, release)

	c := NewClient(Config{
		Backends:   []string{slow.URL},
		HedgeAfter: 20 * time.Millisecond,
	}, echoLocal)
	done := make(chan error, 1)
	go func() {
		_, err := c.RunUnit(context.Background(), echoUnit{X: 1})
		done <- err
	}()
	time.Sleep(300 * time.Millisecond)
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The sole backend was already tried when the hedge fired: one
	// wakeup, no hedge, then silence.
	if wakes := c.hedgeWake.Load(); wakes != 1 {
		t.Errorf("hedge timer woke %d times, want exactly 1", wakes)
	}
	if st := c.Stats(); st.Hedges != 0 {
		t.Errorf("hedges = %d, want 0 with nowhere to hedge", st.Hedges)
	}
}

// batchEchoBackend serves the echo computation on both the unit and
// batch paths, counting requests per path.
func batchEchoBackend(t *testing.T, unitReqs, batchReqs *atomic.Int64) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/unit", func(w http.ResponseWriter, r *http.Request) {
		if unitReqs != nil {
			unitReqs.Add(1)
		}
		var u echoUnit
		if err := json.NewDecoder(r.Body).Decode(&u); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, _ := echoLocal(u)
		json.NewEncoder(w).Encode(res)
	})
	mux.HandleFunc("/batch", func(w http.ResponseWriter, r *http.Request) {
		if batchReqs != nil {
			batchReqs.Add(1)
		}
		var us []echoUnit
		if err := json.NewDecoder(r.Body).Decode(&us); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out := make([]echoResult, len(us))
		for i, u := range us {
			out[i], _ = echoLocal(u)
		}
		json.NewEncoder(w).Encode(out)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestClientBatchesUnits(t *testing.T) {
	t.Parallel()
	var unitReqs, batchReqs atomic.Int64
	srv := batchEchoBackend(t, &unitReqs, &batchReqs)
	c := NewClient(Config{
		Backends:   []string{srv.URL},
		Path:       "/unit",
		BatchPath:  "/batch",
		BatchUnits: 4,
	}, echoLocal)
	got, err := engine.RunAll(context.Background(), 4, units(16), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, got)
	if batchReqs.Load() != 4 {
		t.Errorf("batch requests = %d, want 4 (16 units / 4 per batch)", batchReqs.Load())
	}
	if unitReqs.Load() != 0 {
		t.Errorf("unit requests = %d, want 0 when batching", unitReqs.Load())
	}
	st := c.Stats()
	if st.Batches != 4 {
		t.Errorf("Stats.Batches = %d, want 4", st.Batches)
	}
	if st.Backends[0].Units != 16 {
		t.Errorf("backend units = %d, want all 16 counted", st.Backends[0].Units)
	}
}

func TestClientBatchDegradesWhenEndpointAbsent(t *testing.T) {
	t.Parallel()
	// An older daemon: unit path present, batch path 404s.
	var unitReqs atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/unit", func(w http.ResponseWriter, r *http.Request) {
		unitReqs.Add(1)
		var u echoUnit
		json.NewDecoder(r.Body).Decode(&u)
		res, _ := echoLocal(u)
		json.NewEncoder(w).Encode(res)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	c := NewClient(Config{
		Backends:   []string{srv.URL},
		Path:       "/unit",
		BatchPath:  "/batch",
		BatchUnits: 4,
	}, echoLocal)
	got, err := engine.RunAll(context.Background(), 4, units(8), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, got)
	if unitReqs.Load() != 8 {
		t.Errorf("unit requests = %d, want all 8 degraded to the unit path", unitReqs.Load())
	}
	st := c.Stats()
	if st.Batches != 0 {
		t.Errorf("Stats.Batches = %d, want 0 against a batchless daemon", st.Batches)
	}
	// Version skew is not sickness: the backend must stay live.
	if st.Backends[0].Dead || st.Backends[0].Failures != 0 {
		t.Errorf("batchless backend penalized: %+v", st.Backends[0])
	}
}

func TestClientBatchReroutesOnFailure(t *testing.T) {
	t.Parallel()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "backend on fire", http.StatusInternalServerError)
	}))
	t.Cleanup(bad.Close)
	var batchReqs atomic.Int64
	good := batchEchoBackend(t, nil, &batchReqs)

	c := NewClient(Config{
		Backends:    []string{bad.URL, good.URL},
		Path:        "/unit",
		BatchPath:   "/batch",
		BatchUnits:  4,
		MaxFailures: 1,
	}, echoLocal)
	got, err := engine.RunAll(context.Background(), 2, units(8), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, got)
	if batchReqs.Load() == 0 {
		t.Error("no batches rerouted to the healthy backend")
	}
	st := c.Stats()
	for _, b := range st.Backends {
		if b.Addr == bad.URL && !b.Dead {
			t.Errorf("failing backend not marked dead after batch failures: %+v", b)
		}
	}
}

func TestBatchUnitsDisabledWithoutBatchPath(t *testing.T) {
	t.Parallel()
	c := NewClient(Config{Backends: []string{"h:1"}}, echoLocal)
	if got := c.BatchUnits(); got != 1 {
		t.Errorf("BatchUnits() = %d without a BatchPath, want 1", got)
	}
	none := NewClient(Config{BatchPath: "/batch"}, echoLocal)
	if got := none.BatchUnits(); got != 1 {
		t.Errorf("BatchUnits() = %d without backends, want 1", got)
	}
	on := NewClient(Config{Backends: []string{"h:1"}, BatchPath: "/batch"}, echoLocal)
	if got := on.BatchUnits(); got != DefaultBatchUnits {
		t.Errorf("BatchUnits() = %d, want DefaultBatchUnits", got)
	}
}

func TestStudyClientBatchesByDefault(t *testing.T) {
	t.Parallel()
	c := NewStudyClient(Config{Backends: []string{"h:1"}})
	if got := c.BatchUnits(); got != DefaultBatchUnits {
		t.Errorf("study client BatchUnits() = %d, want batching on by default", got)
	}
	off := NewStudyClient(Config{Backends: []string{"h:1"}, BatchUnits: 1})
	if got := off.BatchUnits(); got != 1 {
		t.Errorf("study client BatchUnits() = %d with BatchUnits=1, want batching off", got)
	}
}

func TestClientConcurrencySizing(t *testing.T) {
	t.Parallel()
	c := NewClient(Config{Backends: []string{"a:1", "b:2"}}, echoLocal)
	if got := c.Concurrency(0); got != 8 {
		t.Errorf("Concurrency(0) = %d, want 4 per backend", got)
	}
	if got := c.Concurrency(3); got != 3 {
		t.Errorf("Concurrency(3) = %d, want the explicit request honored", got)
	}
	local := NewClient(Config{}, echoLocal)
	if got := local.Concurrency(0); got != 0 {
		t.Errorf("Concurrency(0) with no backends = %d, want 0 (engine default)", got)
	}
}

func TestClientForwardsRequestID(t *testing.T) {
	t.Parallel()
	var unitIDs, batchIDs atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/unit", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(obs.RequestIDHeader) == "trace-forward" {
			unitIDs.Add(1)
		}
		var u echoUnit
		json.NewDecoder(r.Body).Decode(&u)
		res, _ := echoLocal(u)
		json.NewEncoder(w).Encode(res)
	})
	mux.HandleFunc("/batch", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(obs.RequestIDHeader) == "trace-forward" {
			batchIDs.Add(1)
		}
		var us []echoUnit
		json.NewDecoder(r.Body).Decode(&us)
		out := make([]echoResult, len(us))
		for i, u := range us {
			out[i], _ = echoLocal(u)
		}
		json.NewEncoder(w).Encode(out)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	ctx := obs.WithRequestID(context.Background(), "trace-forward")
	c := NewClient(Config{Backends: []string{srv.URL}, Path: "/unit", BatchPath: "/batch", BatchUnits: 4}, echoLocal)
	if _, err := c.RunUnit(ctx, echoUnit{X: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunBatch(ctx, units(4)); err != nil {
		t.Fatal(err)
	}
	if unitIDs.Load() != 1 || batchIDs.Load() != 1 {
		t.Errorf("request ID forwarded on %d unit and %d batch POSTs, want 1 and 1",
			unitIDs.Load(), batchIDs.Load())
	}

	// Without an ID in the context, no header is sent.
	bare := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, present := r.Header[obs.RequestIDHeader]; present {
			t.Error("X-Request-Id sent with no ID in the context")
		}
		var u echoUnit
		json.NewDecoder(r.Body).Decode(&u)
		res, _ := echoLocal(u)
		json.NewEncoder(w).Encode(res)
	}))
	t.Cleanup(bare.Close)
	c2 := NewClient(Config{Backends: []string{bare.URL}}, echoLocal)
	if _, err := c2.RunUnit(context.Background(), echoUnit{X: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsReportsLatencyReroutesAndQuarantines(t *testing.T) {
	t.Parallel()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "backend on fire", http.StatusInternalServerError)
	}))
	t.Cleanup(bad.Close)
	good := echoBackend(t, nil)

	c := NewClient(Config{
		Backends:    []string{bad.URL, good.URL},
		MaxFailures: 2,
	}, echoLocal)
	if _, err := engine.RunAll(context.Background(), 4, units(16), c, nil); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Reroutes == 0 {
		t.Errorf("Reroutes = 0 after units failed over, want > 0")
	}
	if st.Quarantines != 1 {
		t.Errorf("Quarantines = %d, want exactly 1 (the bad backend, counted once)", st.Quarantines)
	}
	for _, b := range st.Backends {
		if b.InFlight != 0 {
			t.Errorf("backend %s InFlight = %d after the run, want 0", b.Addr, b.InFlight)
		}
		if b.P50 <= 0 || b.P99 < b.P50 {
			t.Errorf("backend %s quantiles p50=%v p99=%v, want 0 < p50 <= p99", b.Addr, b.P50, b.P99)
		}
	}
}
