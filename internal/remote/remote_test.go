package remote

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

// echoUnit / echoResult are a trivial unit type for exercising the
// generic client without booting simulators.
type echoUnit struct {
	X int `json:"x"`
}

type echoResult struct {
	Y int `json:"y"`
}

func echoLocal(u echoUnit) (echoResult, error) {
	return echoResult{Y: u.X * 2}, nil
}

// echoBackend serves the echo computation, counting requests.
func echoBackend(t *testing.T, served *atomic.Int64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var u echoUnit
		if err := json.NewDecoder(r.Body).Decode(&u); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if served != nil {
			served.Add(1)
		}
		res, _ := echoLocal(u)
		json.NewEncoder(w).Encode(res)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func units(n int) []echoUnit {
	out := make([]echoUnit, n)
	for i := range out {
		out[i] = echoUnit{X: i}
	}
	return out
}

func checkResults(t *testing.T, got []echoResult) {
	t.Helper()
	for i, r := range got {
		if r.Y != i*2 {
			t.Fatalf("out[%d] = %+v, want Y=%d", i, r, i*2)
		}
	}
}

func TestClientShardsAcrossBackends(t *testing.T) {
	t.Parallel()
	var servedA, servedB atomic.Int64
	a := echoBackend(t, &servedA)
	b := echoBackend(t, &servedB)
	c := NewClient(Config{Backends: []string{a.URL, b.URL}}, echoLocal)

	got, err := engine.RunAll(context.Background(), 0, units(24), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, got)
	st := c.Stats()
	if st.Fallbacks != 0 {
		t.Errorf("fallbacks = %d, want 0 with live backends", st.Fallbacks)
	}
	if servedA.Load() == 0 || servedB.Load() == 0 {
		t.Errorf("work not sharded: backend A served %d, B served %d",
			servedA.Load(), servedB.Load())
	}
	if n := servedA.Load() + servedB.Load(); n < 24 {
		t.Errorf("backends served %d units, want >= 24", n)
	}
}

func TestClientReroutesAroundFailingBackend(t *testing.T) {
	t.Parallel()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "backend on fire", http.StatusInternalServerError)
	}))
	t.Cleanup(bad.Close)
	var servedGood atomic.Int64
	good := echoBackend(t, &servedGood)

	c := NewClient(Config{
		Backends:    []string{bad.URL, good.URL},
		MaxFailures: 2,
	}, echoLocal)
	got, err := engine.RunAll(context.Background(), 4, units(16), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, got)
	st := c.Stats()
	var deadSeen bool
	for _, b := range st.Backends {
		if b.Addr == bad.URL {
			deadSeen = b.Dead
		}
	}
	if !deadSeen {
		t.Errorf("failing backend not marked dead: %+v", st.Backends)
	}
	if servedGood.Load() != 16 {
		t.Errorf("good backend served %d units, want all 16 rerouted", servedGood.Load())
	}
}

func TestClientFallsBackToLocalWhenAllBackendsDead(t *testing.T) {
	t.Parallel()
	// A closed server: every connection is refused.
	dead := httptest.NewServer(http.NotFoundHandler())
	addr := dead.URL
	dead.Close()

	c := NewClient(Config{Backends: []string{addr}, MaxFailures: 1}, echoLocal)
	got, err := engine.RunAll(context.Background(), 2, units(6), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, got)
	if st := c.Stats(); st.Fallbacks != 6 {
		t.Errorf("fallbacks = %d, want all 6 units computed locally", st.Fallbacks)
	}
}

func TestClientNoBackendsComputesLocally(t *testing.T) {
	t.Parallel()
	c := NewClient(Config{}, echoLocal)
	got, err := engine.RunAll(context.Background(), 2, units(4), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, got)
	if st := c.Stats(); st.Fallbacks != 4 {
		t.Errorf("fallbacks = %d, want 4", st.Fallbacks)
	}
}

func TestClientHedgesSlowBackend(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the server only notices a client
		// disconnect (and cancels r.Context()) once the request has
		// been consumed.
		var u echoUnit
		json.NewDecoder(r.Body).Decode(&u)
		select {
		case <-release:
		case <-r.Context().Done():
			return
		}
		res, _ := echoLocal(u)
		json.NewEncoder(w).Encode(res)
	}))
	t.Cleanup(func() { close(release); slow.Close() })
	fast := echoBackend(t, nil)

	c := NewClient(Config{
		Backends:   []string{slow.URL, fast.URL},
		HedgeAfter: 20 * time.Millisecond,
	}, echoLocal)
	// One unit at a time: whichever backend the unit lands on first,
	// a stalled attempt must be hedged to the other and finish fast.
	start := time.Now()
	got, err := engine.RunAll(context.Background(), 1, units(4), c, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkResults(t, got)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("hedged run took %v", elapsed)
	}
	if st := c.Stats(); st.Hedges == 0 {
		t.Error("no hedges fired against a stalled backend")
	}
}

func TestClientRespectsContextCancel(t *testing.T) {
	t.Parallel()
	stallDone := make(chan struct{})
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) // let the server watch for disconnect
		select {
		case <-r.Context().Done():
		case <-stallDone:
		}
	}))
	t.Cleanup(func() { close(stallDone); stall.Close() })
	c := NewClient(Config{Backends: []string{stall.URL}, HedgeAfter: time.Hour}, echoLocal)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.RunUnit(ctx, echoUnit{X: 1}); err == nil {
		t.Fatal("want context error from canceled unit")
	}
}

func TestParseBackends(t *testing.T) {
	t.Parallel()
	if got := ParseBackends(""); got != nil {
		t.Errorf("ParseBackends(\"\") = %v, want nil", got)
	}
	got := ParseBackends(" a:1, b:2 ,,c:3 ")
	want := []string{"a:1", "b:2", "c:3"}
	if len(got) != len(want) {
		t.Fatalf("ParseBackends = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ParseBackends[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRunnerConstructorsNilForEmpty(t *testing.T) {
	t.Parallel()
	if r := StudyRunner(nil); r != nil {
		t.Error("StudyRunner(nil) should be nil (local compute)")
	}
	if r := SweepRunner(nil); r != nil {
		t.Error("SweepRunner(nil) should be nil (local compute)")
	}
	if StudyRunner([]string{"h:1"}) == nil || SweepRunner([]string{"h:1"}) == nil {
		t.Error("constructors returned nil for a non-empty backend list")
	}
}

func TestClientConcurrencySizing(t *testing.T) {
	t.Parallel()
	c := NewClient(Config{Backends: []string{"a:1", "b:2"}}, echoLocal)
	if got := c.Concurrency(0); got != 8 {
		t.Errorf("Concurrency(0) = %d, want 4 per backend", got)
	}
	if got := c.Concurrency(3); got != 3 {
		t.Errorf("Concurrency(3) = %d, want the explicit request honored", got)
	}
	local := NewClient(Config{}, echoLocal)
	if got := local.Concurrency(0); got != 0 {
		t.Errorf("Concurrency(0) with no backends = %d, want 0 (engine default)", got)
	}
}
