package remote

import (
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
)

// ParseBackends splits a -backends flag value ("host:port,host:port")
// into its backend list, trimming blanks and dropping empty elements,
// so "" means no backends (local compute).
func ParseBackends(flagValue string) []string {
	var out []string
	for _, f := range strings.Split(flagValue, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// NewStudyClient returns a sharding client for campaign session units
// (fx8d's POST /v1/run/session), falling back to in-process sessions.
// Session units batch by default over POST /v1/run/sessions —
// DefaultBatchUnits units per request — because the per-unit JSON
// round trip is the remote layer's dominant overhead; backends
// without the batch endpoint degrade to the per-unit path.  Set
// cfg.BatchUnits to 1 alongside an empty BatchPath to force
// unbatched execution.
func NewStudyClient(cfg Config) *Client[core.StudyUnit, core.StudyUnitResult] {
	cfg.Path = SessionPath
	if cfg.BatchPath == "" && cfg.BatchUnits == 0 {
		cfg.BatchPath = SessionBatchPath
	}
	return NewClient(cfg, core.RunStudyUnit)
}

// NewSweepClient returns a sharding client for sweep-point units
// (fx8d's POST /v1/run/sweep), falling back to in-process points.
func NewSweepClient(cfg Config) *Client[experiments.SweepUnit, experiments.SweepPoint] {
	cfg.Path = SweepPath
	return NewClient(cfg, experiments.RunSweepUnit)
}

// StudyClient is NewStudyClient over functional options:
//
//	remote.StudyClient(remote.WithRegistry(reg), remote.WithHedge(5*time.Second))
//
// so callers like the coordinator name only the knobs they mean to
// set.
func StudyClient(opts ...Option) *Client[core.StudyUnit, core.StudyUnitResult] {
	return NewStudyClient(Options(opts...))
}

// SweepClient is NewSweepClient over functional options.
func SweepClient(opts ...Option) *Client[experiments.SweepUnit, experiments.SweepPoint] {
	return NewSweepClient(Options(opts...))
}

// StudyRunner resolves a -backends list to a session runner: nil for
// an empty list (the cache and cmd tools then compute in-process),
// otherwise a sharding client over the fleet.
func StudyRunner(backends []string) core.StudyRunner {
	if len(backends) == 0 {
		return nil
	}
	return NewStudyClient(Config{Backends: backends})
}

// SweepRunner resolves a -backends list to a sweep runner: nil for an
// empty list, otherwise a sharding client over the fleet.
func SweepRunner(backends []string) experiments.SweepRunner {
	if len(backends) == 0 {
		return nil
	}
	return NewSweepClient(Config{Backends: backends})
}
