// Package remote is the client side of sharded execution: an
// engine.Runner that ships work units — campaign sessions, sweep
// points — to a fleet of fx8d backends over HTTP and reassembles
// their results.
//
// Every unit is a pure function of its JSON-encoded description, so
// the client is free to schedule aggressively: units go to the
// least-loaded live backend, a failed unit is rerouted to the next
// backend, a slow unit is hedged (a duplicate fired at another
// backend, first answer wins), and when every backend is dead or none
// was configured the unit is computed locally.  Work is never lost —
// a backend killed mid-run costs only the latency of rerouting its
// in-flight units — and because the engine reassembles results in
// unit order, sharded output is byte-identical to local output for
// every backend count.
//
// The serving side is fx8d's POST /v1/run/session and POST
// /v1/run/sweep endpoints (internal/service), which execute one unit
// per request behind the daemon's admission semaphore and cache unit
// results in the campaign store.
package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Paths of the fx8d unit-execution endpoints, shared with
// internal/service so client and server cannot drift.
const (
	SessionPath = "/v1/run/session"
	SweepPath   = "/v1/run/sweep"
)

// Defaults for Config's zero fields.
const (
	DefaultUnitTimeout = 10 * time.Minute
	DefaultHedgeAfter  = 30 * time.Second
	DefaultMaxFailures = 3
)

// Config sizes a Client.
type Config struct {
	// Backends are the fx8d nodes, as "host:port" (http:// is
	// assumed) or full URLs.
	Backends []string

	// Path is the unit-execution endpoint (SessionPath or
	// SweepPath).
	Path string

	// UnitTimeout bounds one attempt of one unit on one backend;
	// a timed-out attempt counts as a backend failure and the unit
	// is rerouted.  0 means DefaultUnitTimeout.
	UnitTimeout time.Duration

	// HedgeAfter is how long a unit's oldest attempt may run before
	// a duplicate is fired at another backend (tail-latency hedging;
	// first answer wins).  0 means DefaultHedgeAfter.
	HedgeAfter time.Duration

	// MaxFailures is how many failed units mark a backend dead; a
	// dead backend receives no further units for the life of the
	// client.  0 means DefaultMaxFailures.
	MaxFailures int

	// HTTPClient overrides the transport (tests); nil uses a
	// dedicated default client.
	HTTPClient *http.Client
}

// backend is one fx8d node and its health accounting.
type backend struct {
	addr     string // as configured, for Stats
	url      string // resolved endpoint URL
	inflight atomic.Int64
	failures atomic.Int64
	units    atomic.Uint64 // completed units
	dead     atomic.Bool
}

func (b *backend) fail(maxFailures int) {
	if b.failures.Add(1) >= int64(maxFailures) {
		b.dead.Store(true)
	}
}

func (b *backend) ok() {
	b.failures.Store(0)
	b.units.Add(1)
}

// Client is a sharding engine.Runner[U, R]: U is POSTed as JSON to
// one backend's Path and R decoded from the 200 response.  fallback
// computes a unit in-process when no backend can.  All methods are
// safe for concurrent use; drive it with engine.RunAll.
type Client[U, R any] struct {
	cfg       Config
	backends  []*backend
	fallback  func(U) (R, error)
	httpc     *http.Client
	rr        atomic.Uint64 // round-robin tiebreak for pick
	fallbackN atomic.Uint64
	hedgeN    atomic.Uint64
}

// NewClient builds a sharding client; fallback is the local compute
// path used when every backend is dead or none was configured.
func NewClient[U, R any](cfg Config, fallback func(U) (R, error)) *Client[U, R] {
	if cfg.UnitTimeout <= 0 {
		cfg.UnitTimeout = DefaultUnitTimeout
	}
	if cfg.HedgeAfter <= 0 {
		cfg.HedgeAfter = DefaultHedgeAfter
	}
	if cfg.MaxFailures <= 0 {
		cfg.MaxFailures = DefaultMaxFailures
	}
	c := &Client[U, R]{cfg: cfg, fallback: fallback, httpc: cfg.HTTPClient}
	if c.httpc == nil {
		c.httpc = &http.Client{}
	}
	for _, addr := range cfg.Backends {
		url := addr
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		c.backends = append(c.backends, &backend{
			addr: addr,
			url:  strings.TrimRight(url, "/") + cfg.Path,
		})
	}
	return c
}

// Concurrency implements engine.Sizer: with backends configured the
// pool is sized to keep every backend's admission queue fed (four
// units in flight per backend, fx8d's default -max-inflight) rather
// than to the local CPU count.
func (c *Client[U, R]) Concurrency(requested int) int {
	if requested > 0 {
		return requested
	}
	if len(c.backends) == 0 {
		return 0 // let the engine pick DefaultWorkers
	}
	return 4 * len(c.backends)
}

// RunUnit implements engine.Runner: it executes one unit on the
// fleet, rerouting on failure and hedging slow attempts, and falls
// back to local compute when no backend answers.  The only errors it
// returns are the context's — a unit outcome is otherwise always
// produced.
func (c *Client[U, R]) RunUnit(ctx context.Context, unit U) (R, error) {
	var zero R
	payload, err := json.Marshal(unit)
	if err != nil {
		return zero, fmt.Errorf("remote: encoding unit: %w", err)
	}

	// unitCtx cancels the losers once any attempt wins.
	unitCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type attempt struct {
		res R
		err error
		b   *backend
	}
	results := make(chan attempt, len(c.backends)) // attempts never block on send
	tried := make(map[*backend]bool, len(c.backends))
	inFlight := 0

	// launch fires the unit at the best untried live backend,
	// reporting whether one existed.
	launch := func() bool {
		b := c.pick(tried)
		if b == nil {
			return false
		}
		tried[b] = true
		inFlight++
		b.inflight.Add(1)
		go func() {
			res, err := c.post(unitCtx, b, payload)
			b.inflight.Add(-1)
			results <- attempt{res, err, b}
		}()
		return true
	}

	launch()
	for inFlight > 0 {
		hedge := time.NewTimer(c.cfg.HedgeAfter)
		select {
		case a := <-results:
			hedge.Stop()
			inFlight--
			if a.err == nil {
				a.b.ok()
				return a.res, nil
			}
			if unitCtx.Err() == nil {
				// A real failure, not an attempt we canceled.
				a.b.fail(c.cfg.MaxFailures)
			}
			if ctx.Err() != nil {
				return zero, ctx.Err()
			}
			launch() // reroute to the next backend, if any
		case <-hedge.C:
			// The oldest attempt is slow: duplicate the unit on
			// another backend and take whichever answers first.
			if launch() {
				c.hedgeN.Add(1)
			}
		case <-ctx.Done():
			hedge.Stop()
			return zero, ctx.Err()
		}
	}

	// Every backend is dead, was tried and failed, or none was
	// configured: compute the unit locally so work is never lost.
	if ctx.Err() != nil {
		return zero, ctx.Err()
	}
	c.fallbackN.Add(1)
	return c.fallback(unit)
}

// pick returns the untried live backend with the fewest units in
// flight, rotating the scan start so ties spread round-robin.
func (c *Client[U, R]) pick(tried map[*backend]bool) *backend {
	n := len(c.backends)
	if n == 0 {
		return nil
	}
	start := int(c.rr.Add(1)) % n
	var best *backend
	var bestLoad int64
	for i := 0; i < n; i++ {
		b := c.backends[(start+i)%n]
		if tried[b] || b.dead.Load() {
			continue
		}
		if load := b.inflight.Load(); best == nil || load < bestLoad {
			best, bestLoad = b, load
		}
	}
	return best
}

// post runs one attempt of one unit on one backend.
func (c *Client[U, R]) post(ctx context.Context, b *backend, payload []byte) (R, error) {
	var zero R
	ctx, cancel := context.WithTimeout(ctx, c.cfg.UnitTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.url, bytes.NewReader(payload))
	if err != nil {
		return zero, fmt.Errorf("remote: %s: %w", b.addr, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return zero, fmt.Errorf("remote: %s: %w", b.addr, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return zero, fmt.Errorf("remote: %s: reading response: %w", b.addr, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(body))
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return zero, fmt.Errorf("remote: %s: %s: %s", b.addr, resp.Status, msg)
	}
	var out R
	if err := json.Unmarshal(body, &out); err != nil {
		return zero, fmt.Errorf("remote: %s: decoding result: %w", b.addr, err)
	}
	return out, nil
}

// BackendStats is one backend's share of a client's work.
type BackendStats struct {
	Addr     string
	Units    uint64 // units this backend completed
	Failures int64  // consecutive failures (reset on success)
	Dead     bool
}

// Stats snapshots how the client's units were executed — which
// backends did the work, how many units fell back to local compute,
// and how many hedges fired.
type Stats struct {
	Backends  []BackendStats
	Fallbacks uint64
	Hedges    uint64
}

// Stats returns a snapshot of the client's scheduling outcomes.
func (c *Client[U, R]) Stats() Stats {
	s := Stats{Fallbacks: c.fallbackN.Load(), Hedges: c.hedgeN.Load()}
	for _, b := range c.backends {
		s.Backends = append(s.Backends, BackendStats{
			Addr:     b.addr,
			Units:    b.units.Load(),
			Failures: b.failures.Load(),
			Dead:     b.dead.Load(),
		})
	}
	return s
}
