// Package remote is the client side of sharded execution: an
// engine.Runner that ships work units — campaign sessions, sweep
// points — to a fleet of fx8d backends over HTTP and reassembles
// their results.
//
// Every unit is a pure function of its JSON-encoded description, so
// the client is free to schedule aggressively: units go to the
// least-loaded live backend, a failed unit is rerouted to the next
// backend, a slow unit is hedged (a duplicate fired at another
// backend, first answer wins), and when every backend is dead or none
// was configured the unit is computed locally.  Work is never lost —
// a backend killed mid-run costs only the latency of rerouting its
// in-flight units — and because the engine reassembles results in
// unit order, sharded output is byte-identical to local output for
// every backend count.
//
// The serving side is fx8d's POST /v1/run/session and POST
// /v1/run/sweep endpoints (internal/service), which execute one unit
// per request behind the daemon's admission semaphore and cache unit
// results in the campaign store.
//
// # Configuration and membership
//
// Clients are built from functional options — StudyClient(
// WithBackends(...), WithHedge(...), WithBatch(...)) — or from a
// literal Config via the New*Client constructors.  WithRegistry
// attaches a BackendSource (e.g. the fleet coordinator's TTL'd
// registry) so membership is re-snapshotted per scheduling decision:
// lapsed backends stop receiving units, and a backend that rejoins
// sheds its dead/failure quarantine along with the old entry.
//
// # Errors
//
// Non-2xx responses from fx8d carry the unified ErrorResponse
// envelope (code, message, request ID); the client decodes it and
// surfaces "code: message" in its error strings, so callers and logs
// can branch on the machine-readable code.
//
// # Telemetry and tracing
//
// The client keeps a per-backend latency histogram (every attempt,
// success or failure, is observed) plus counters for reroutes,
// hedges, quarantines and batched requests, all snapshotted by
// Stats.  When the driving context carries a request ID
// (obs.WithRequestID), every unit and batch POST forwards it in the
// X-Request-Id header, so each backend's span log attributes the
// campaign's units to one trace — GET /v1/trace/{id} on the backends
// reconstructs where a sharded campaign's time went.
package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/retry"
)

// Paths of the fx8d unit-execution endpoints, shared with
// internal/service so client and server cannot drift.  The batch
// path carries a JSON array of session units per request — one POST,
// many units — amortizing the per-unit HTTP and JSON round trip that
// dominates the remote layer's overhead.
const (
	SessionPath      = "/v1/run/session"
	SessionBatchPath = "/v1/run/sessions"
	SweepPath        = "/v1/run/sweep"
)

// Defaults for Config's zero fields.
const (
	DefaultUnitTimeout = 10 * time.Minute
	DefaultHedgeAfter  = 30 * time.Second
	DefaultMaxFailures = 3
	DefaultBatchUnits  = 16
)

// Config sizes a Client.
type Config struct {
	// Backends are the fx8d nodes, as "host:port" (http:// is
	// assumed) or full URLs.
	Backends []string

	// Path is the unit-execution endpoint (SessionPath or
	// SweepPath).
	Path string

	// UnitTimeout bounds one attempt of one unit on one backend;
	// a timed-out attempt counts as a backend failure and the unit
	// is rerouted.  0 means DefaultUnitTimeout.
	UnitTimeout time.Duration

	// HedgeAfter is how long a unit's oldest attempt may run before
	// a duplicate is fired at another backend (tail-latency hedging;
	// first answer wins).  0 means DefaultHedgeAfter.
	HedgeAfter time.Duration

	// MaxFailures is how many failed units mark a backend dead; a
	// dead backend receives no further units for the life of the
	// client.  0 means DefaultMaxFailures.
	MaxFailures int

	// BatchPath is the batched unit-execution endpoint
	// (SessionBatchPath).  When set, the engine drives the client at
	// batch granularity: BatchUnits units per POST instead of one.
	// Empty disables batching.
	BatchPath string

	// BatchUnits is how many units one batched request carries when
	// BatchPath is set.  0 means DefaultBatchUnits.
	BatchUnits int

	// Retry is the retry/backoff policy for units no backend could
	// serve on the first pass: when live backends are merely shedding
	// (429 + Retry-After) rather than failing, the client backs off
	// under this policy and retries the unit instead of falling back
	// to local compute.  The policy's PerAttempt, when set, overrides
	// UnitTimeout as the per-attempt bound; its Metrics field, when
	// set, receives every retry outcome (otherwise the client books
	// into its own, visible via Stats).  The zero value means the
	// retry package defaults.
	Retry retry.Policy

	// Registry, when set, makes fleet membership dynamic: its
	// Snapshot is re-read before every unit or batch and replaces the
	// backend list, so workers registered via POST /v1/backends/
	// register join mid-campaign and lapsed heartbeats drop out.  The
	// static Backends list seeds membership until the first snapshot.
	Registry BackendSource

	// HTTPClient overrides the transport (tests); nil uses a
	// dedicated default client.
	HTTPClient *http.Client
}

// backend is one fx8d node and its health accounting.
type backend struct {
	addr     string // as configured, for Stats
	url      string // resolved endpoint URL
	batchURL string // resolved batch endpoint URL ("" = no batching)
	inflight atomic.Int64
	failures atomic.Int64
	units    atomic.Uint64 // completed units
	dead     atomic.Bool
	noBatch  atomic.Bool    // batch endpoint absent (version skew)
	lat      *obs.Histogram // per-attempt request latency

	// backoffUntil is the UnixNano deadline of a shed-induced backoff:
	// a backend that answered 429 + Retry-After is overloaded, not
	// sick, so instead of counting failures toward quarantine the
	// client stops routing units to it until the advertised interval
	// has passed.
	backoffUntil atomic.Int64
}

// inBackoff reports whether the backend is inside a shed-induced
// backoff window.
func (b *backend) inBackoff(now int64) bool { return b.backoffUntil.Load() > now }

// shed books a 429 + Retry-After response: back off for the
// advertised interval.
func (b *backend) shed(after time.Duration) {
	b.backoffUntil.Store(time.Now().Add(after).UnixNano())
}

// fail books one failed attempt, reporting whether this failure is
// the one that quarantined the backend (so the client can count
// quarantine transitions exactly once).
func (b *backend) fail(maxFailures int) (quarantined bool) {
	if b.failures.Add(1) >= int64(maxFailures) {
		return !b.dead.Swap(true)
	}
	return false
}

func (b *backend) ok() {
	b.failures.Store(0)
	b.units.Add(1)
}

// Client is a sharding engine.Runner[U, R]: U is POSTed as JSON to
// one backend's Path and R decoded from the 200 response.  fallback
// computes a unit in-process when no backend can.  All methods are
// safe for concurrent use; drive it with engine.RunAll.
type Client[U, R any] struct {
	cfg      Config
	fallback func(U) (R, error)
	httpc    *http.Client
	retry    retry.Policy   // resolved policy (metrics attached)
	rmetrics *retry.Metrics // retry outcome counters, snapshotted by Stats

	// Membership.  The backends slice is replaced wholesale under mu
	// on every registry refresh and never mutated in place, so view()
	// hands out a stable snapshot; byAddr survives leaves so a
	// rejoining backend keeps its latency history.
	mu       sync.RWMutex
	backends []*backend
	byAddr   map[string]*backend
	sig      string // joined snapshot the current membership was built from

	rr          atomic.Uint64 // round-robin tiebreak for pick
	fallbackN   atomic.Uint64
	hedgeN      atomic.Uint64
	batchN      atomic.Uint64
	rerouteN    atomic.Uint64 // attempts relaunched after a failure
	quarantineN atomic.Uint64 // backends transitioned to dead
	hedgeWake   atomic.Uint64 // hedge-timer wakeups (tests pin these down)
}

// NewClient builds a sharding client; fallback is the local compute
// path used when every backend is dead or none was configured.
func NewClient[U, R any](cfg Config, fallback func(U) (R, error)) *Client[U, R] {
	if cfg.UnitTimeout <= 0 {
		cfg.UnitTimeout = DefaultUnitTimeout
	}
	if cfg.HedgeAfter <= 0 {
		cfg.HedgeAfter = DefaultHedgeAfter
	}
	if cfg.MaxFailures <= 0 {
		cfg.MaxFailures = DefaultMaxFailures
	}
	if cfg.BatchUnits <= 0 {
		cfg.BatchUnits = DefaultBatchUnits
	}
	c := &Client[U, R]{cfg: cfg, fallback: fallback, httpc: cfg.HTTPClient,
		byAddr: make(map[string]*backend)}
	c.retry = cfg.Retry
	if c.retry.PerAttempt <= 0 {
		c.retry.PerAttempt = cfg.UnitTimeout
	}
	c.rmetrics = c.retry.Metrics
	if c.rmetrics == nil {
		c.rmetrics = &retry.Metrics{}
		c.retry.Metrics = c.rmetrics
	}
	if c.httpc == nil {
		c.httpc = &http.Client{}
	}
	for _, addr := range cfg.Backends {
		b := c.newBackend(addr)
		c.byAddr[addr] = b
		c.backends = append(c.backends, b)
	}
	c.refresh()
	return c
}

// newBackend resolves one configured address into its endpoint URLs.
func (c *Client[U, R]) newBackend(addr string) *backend {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	base := strings.TrimRight(url, "/")
	b := &backend{addr: addr, url: base + c.cfg.Path, lat: obs.NewHistogram(nil)}
	if c.cfg.BatchPath != "" {
		b.batchURL = base + c.cfg.BatchPath
	}
	return b
}

// refresh re-reads the registry snapshot and swaps in the new
// membership when it changed.  Retained addresses keep their backend
// (stats, health) untouched; a re-appearing address is revived —
// quarantine and failure count cleared — because re-registration
// after an absence is the signal the node was fixed; absent addresses
// simply drop out of the slice (byAddr remembers them for a later
// rejoin).  Without a registry this is a no-op and membership is the
// static Backends list for the life of the client.
func (c *Client[U, R]) refresh() {
	if c.cfg.Registry == nil {
		return
	}
	addrs := c.cfg.Registry.Snapshot()
	// The NUL prefix keeps any snapshot — including an empty one —
	// distinct from the never-refreshed zero sig, so the static seed
	// list is replaced exactly once even by an empty fleet.
	sig := "\x00" + strings.Join(addrs, ",")
	c.mu.RLock()
	same := sig == c.sig
	c.mu.RUnlock()
	if same {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if sig == c.sig { // lost the rebuild race to an identical snapshot
		return
	}
	list := make([]*backend, 0, len(addrs))
	current := make(map[string]bool, len(c.backends))
	for _, b := range c.backends {
		current[b.addr] = true
	}
	for _, addr := range addrs {
		b, ok := c.byAddr[addr]
		if !ok {
			b = c.newBackend(addr)
			c.byAddr[addr] = b
		} else if !current[addr] {
			b.dead.Store(false)
			b.failures.Store(0)
			b.noBatch.Store(false)
		}
		list = append(list, b)
	}
	c.backends = list
	c.sig = sig
}

// view returns the current membership snapshot.  The slice is
// immutable once published, so callers iterate without holding mu.
func (c *Client[U, R]) view() []*backend {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.backends
}

// Concurrency implements engine.Sizer: with backends configured the
// pool is sized to keep every backend's admission queue fed (four
// units in flight per backend, fx8d's default -max-inflight) rather
// than to the local CPU count.
func (c *Client[U, R]) Concurrency(requested int) int {
	if requested > 0 {
		return requested
	}
	c.refresh()
	n := len(c.view())
	if n == 0 {
		return 0 // let the engine pick DefaultWorkers
	}
	return 4 * n
}

// RunUnit implements engine.Runner: it executes one unit on the
// fleet, rerouting on failure and hedging slow attempts.  A round
// that exhausts every backend without an answer ends one of two ways:
// when some live backend is merely shedding (429 + Retry-After), the
// client backs off under its retry policy — honoring the advertised
// interval — and runs another round; when backends are dead or
// failing outright, the unit falls back to local compute so work is
// never lost.  The only errors it returns are the context's — a unit
// outcome is otherwise always produced.
func (c *Client[U, R]) RunUnit(ctx context.Context, unit U) (R, error) {
	var zero R
	payload, err := json.Marshal(unit)
	if err != nil {
		return zero, fmt.Errorf("remote: encoding unit: %w", err)
	}

	// Membership is pinned per unit: a refresh mid-unit affects the
	// next unit, not attempts already in flight.
	c.refresh()
	backends := c.view()

	maxRounds := c.retry.MaxAttempts
	if maxRounds == 0 {
		maxRounds = retry.DefaultMaxAttempts
	}
	for round := 1; ; round++ {
		res, done, err := c.runRound(ctx, backends, payload)
		if done {
			return res, err
		}
		// The round exhausted every live backend without an answer.
		// If any of them is merely backing off after a shed, the unit
		// is still servable: wait out the shortest backoff under the
		// policy and go again.  Otherwise (dead, failing, or none
		// configured) fall through to local compute.
		hint, shedding := c.soonestBackoff(backends)
		if !shedding || round >= maxRounds {
			break
		}
		c.rmetrics.Retries.Inc()
		if err := c.retry.Wait(ctx, round, hint); err != nil {
			return zero, err
		}
	}

	if ctx.Err() != nil {
		return zero, ctx.Err()
	}
	// Giving up on the fleet for this unit; local compute still
	// produces the answer.
	c.rmetrics.GiveUps.Inc()
	c.fallbackN.Add(1)
	return c.fallback(unit)
}

// runRound runs one full pass of the launch/reroute/hedge machinery
// over the pinned membership.  done reports a definitive outcome (a
// result or a context error); !done means every live backend was
// tried or skipped and the caller decides between another round and
// local fallback.
func (c *Client[U, R]) runRound(ctx context.Context, backends []*backend, payload []byte) (res R, done bool, err error) {
	var zero R

	// unitCtx cancels the losers once any attempt wins.
	unitCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type attempt struct {
		res    R
		err    error
		status int
		b      *backend
	}
	results := make(chan attempt, len(backends)) // attempts never block on send
	tried := make(map[*backend]bool, len(backends))
	inFlight := 0

	// The hedge clock follows the most recently launched attempt: it
	// is armed when an attempt launches and fires once that attempt
	// has run HedgeAfter without an answer.  Events that launch
	// nothing (a stale result from a canceled duplicate, a failure
	// with no backend left to reroute to) never touch the clock, and
	// once no untried live backend remains the timer is disarmed for
	// good — no wakeup can ever launch anything again, so none
	// happens.
	var hedge *time.Timer
	var hedgeC <-chan time.Time
	disarm := func() {
		if hedge != nil {
			hedge.Stop()
			hedge, hedgeC = nil, nil
		}
	}
	defer disarm()

	// launch fires the unit at the best untried live backend,
	// reporting whether one existed, and rewinds the hedge clock for
	// the new attempt.
	launch := func() bool {
		b := c.pick(backends, tried)
		if b == nil {
			return false
		}
		tried[b] = true
		inFlight++
		b.inflight.Add(1)
		c.rmetrics.Attempts.Inc()
		go func() {
			res, status, err := c.post(unitCtx, b, b.url, payload)
			b.inflight.Add(-1)
			results <- attempt{res, err, status, b}
		}()
		disarm()
		hedge = time.NewTimer(c.cfg.HedgeAfter)
		hedgeC = hedge.C
		return true
	}

	launch()
	for inFlight > 0 {
		select {
		case a := <-results:
			inFlight--
			if a.err == nil {
				a.b.ok()
				return a.res, true, nil
			}
			if unitCtx.Err() == nil && a.status != http.StatusTooManyRequests {
				// A real failure, not an attempt we canceled and not a
				// shed: a shedding backend is overloaded, not sick —
				// postRaw already booked its Retry-After backoff, and
				// counting it toward quarantine would amplify the
				// overload into an outage.
				if a.b.fail(c.cfg.MaxFailures) {
					c.quarantineN.Add(1)
				}
			}
			if ctx.Err() != nil {
				return zero, true, ctx.Err()
			}
			if launch() { // reroute to the next backend, if any
				c.rerouteN.Add(1)
				c.rmetrics.Retries.Inc()
			} else {
				// Nothing left to launch, ever: hedging is over.
				disarm()
			}
		case <-hedgeC:
			// The newest attempt is slow: duplicate the unit on
			// another backend and take whichever answers first.
			c.hedgeWake.Add(1)
			if launch() {
				c.hedgeN.Add(1)
			} else {
				disarm()
			}
		case <-ctx.Done():
			return zero, true, ctx.Err()
		}
	}
	return zero, false, nil
}

// soonestBackoff reports whether any live backend is inside a
// shed-induced backoff window, and if so the shortest remaining wait
// — the Retry-After hint for the next round.
func (c *Client[U, R]) soonestBackoff(backends []*backend) (time.Duration, bool) {
	now := time.Now().UnixNano()
	var best int64
	for _, b := range backends {
		if b.dead.Load() {
			continue
		}
		if until := b.backoffUntil.Load(); until > now && (best == 0 || until < best) {
			best = until
		}
	}
	if best == 0 {
		return 0, false
	}
	return time.Duration(best - now), true
}

// BatchUnits implements engine.BatchRunner's sizing half: batching is
// on when a batch path is configured and backends exist; otherwise 1
// tells the engine to drive RunUnit.
func (c *Client[U, R]) BatchUnits() int {
	if c.cfg.BatchPath == "" {
		return 1
	}
	c.refresh()
	if len(c.view()) == 0 {
		return 1
	}
	return c.cfg.BatchUnits
}

// RunBatch implements engine.BatchRunner: it ships a contiguous run
// of units to one backend's batch endpoint in a single POST, trying
// each untried live batch-capable backend in least-loaded order.  A
// backend whose batch endpoint is absent (404/405 from an older
// daemon) is remembered as batchless — not failed — and the units
// flow through RunUnit instead, which reroutes, hedges, and falls
// back to local compute per unit; so does a batch no backend could
// serve.  Batches are not hedged: a duplicated batch would duplicate
// every unit in it.  Either way the results come back one per unit,
// in unit order, byte-identical to the unbatched path — the server
// computes batch units through the same per-unit cache namespace.
func (c *Client[U, R]) RunBatch(ctx context.Context, units []U) ([]R, error) {
	payload, err := json.Marshal(units)
	if err != nil {
		return nil, fmt.Errorf("remote: encoding unit batch: %w", err)
	}
	c.refresh()
	backends := c.view()
	tried := make(map[*backend]bool, len(backends))
	failed := 0 // attempts that failed on a live backend (not version skew)
	for {
		b := c.pickBatch(backends, tried)
		if b == nil {
			break
		}
		if failed > 0 {
			// This launch is a retry of a batch a previous backend
			// failed, not the first attempt.
			c.rerouteN.Add(1)
		}
		tried[b] = true
		b.inflight.Add(int64(len(units)))
		body, status, err := c.postRaw(ctx, b, b.batchURL, payload)
		b.inflight.Add(int64(-len(units)))
		if err != nil {
			if status == http.StatusNotFound || status == http.StatusMethodNotAllowed {
				// An older daemon without the batch endpoint, not a
				// sick one.
				b.noBatch.Store(true)
				continue
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if status == http.StatusTooManyRequests {
				// Shedding, not sick: the backoff is already booked;
				// the per-unit degrade path below waits it out.
				failed++
				continue
			}
			if b.fail(c.cfg.MaxFailures) {
				c.quarantineN.Add(1)
			}
			failed++
			continue
		}
		var out []R
		if err := json.Unmarshal(body, &out); err != nil {
			if b.fail(c.cfg.MaxFailures) {
				c.quarantineN.Add(1)
			}
			failed++
			continue
		}
		if len(out) != len(units) {
			if b.fail(c.cfg.MaxFailures) {
				c.quarantineN.Add(1)
			}
			failed++
			continue
		}
		b.failures.Store(0)
		b.units.Add(uint64(len(units)))
		c.batchN.Add(1)
		return out, nil
	}

	// No batch-capable backend could serve the batch: degrade to the
	// per-unit path, which carries its own reroute/hedge/local-
	// fallback machinery.
	out := make([]R, len(units))
	for i, u := range units {
		res, err := c.RunUnit(ctx, u)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// pickBatch is pick restricted to batch-capable backends.
func (c *Client[U, R]) pickBatch(backends []*backend, tried map[*backend]bool) *backend {
	n := len(backends)
	if n == 0 {
		return nil
	}
	start := int(c.rr.Add(1) % uint64(n))
	now := time.Now().UnixNano()
	var best *backend
	var bestLoad int64
	for i := 0; i < n; i++ {
		b := backends[(start+i)%n]
		if tried[b] || b.dead.Load() || b.noBatch.Load() || b.batchURL == "" || b.inBackoff(now) {
			continue
		}
		if load := b.inflight.Load(); best == nil || load < bestLoad {
			best, bestLoad = b, load
		}
	}
	return best
}

// pick returns the untried live backend with the fewest units in
// flight, rotating the scan start so ties spread round-robin.
func (c *Client[U, R]) pick(backends []*backend, tried map[*backend]bool) *backend {
	n := len(backends)
	if n == 0 {
		return nil
	}
	// Reduce the counter in uint64 before converting: int(Add(1))
	// truncates, and a truncated counter past 2^31 (386) or 2^63
	// goes negative, making (start+i)%n a negative — panicking —
	// index.
	start := int(c.rr.Add(1) % uint64(n))
	now := time.Now().UnixNano()
	var best *backend
	var bestLoad int64
	for i := 0; i < n; i++ {
		b := backends[(start+i)%n]
		if tried[b] || b.dead.Load() || b.inBackoff(now) {
			continue
		}
		if load := b.inflight.Load(); best == nil || load < bestLoad {
			best, bestLoad = b, load
		}
	}
	return best
}

// post runs one attempt of one unit's payload on one backend
// endpoint, returning the HTTP status alongside the decoded result so
// the scheduler can tell a shed (429) from a failure.
func (c *Client[U, R]) post(ctx context.Context, b *backend, url string, payload []byte) (R, int, error) {
	var zero R
	body, status, err := c.postRaw(ctx, b, url, payload)
	if err != nil {
		return zero, status, err
	}
	var out R
	if err := json.Unmarshal(body, &out); err != nil {
		return zero, status, fmt.Errorf("remote: %s: decoding result: %w", b.addr, err)
	}
	return out, status, nil
}

// postRaw POSTs one JSON payload to one backend endpoint and returns
// the 200 response body.  Non-200 responses are errors carrying the
// status code, so callers can distinguish an absent endpoint (404 on
// the batch path of an older daemon) from a failing backend.
func (c *Client[U, R]) postRaw(ctx context.Context, b *backend, url string, payload []byte) ([]byte, int, error) {
	perAttempt := c.retry.PerAttempt
	if perAttempt <= 0 {
		perAttempt = c.cfg.UnitTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, perAttempt)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return nil, 0, fmt.Errorf("remote: %s: %w", b.addr, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id := obs.RequestID(ctx); id != "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	start := time.Now()
	resp, err := c.httpc.Do(req)
	b.lat.Observe(int64(time.Since(start)))
	if err != nil {
		return nil, 0, fmt.Errorf("remote: %s: %w", b.addr, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, fmt.Errorf("remote: %s: reading response: %w", b.addr, err)
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		// The backend is shedding load and advertising when to come
		// back: honor it.  Routing more units at it inside the window
		// would only re-enter the queue it just shed from.
		after := parseRetryAfter(resp.Header.Get("Retry-After"))
		b.shed(after)
		err := fmt.Errorf("remote: %s: %s: %s", b.addr, resp.Status, errorBody(body))
		return nil, resp.StatusCode, retry.WithAfter(err, after)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode, fmt.Errorf("remote: %s: %s: %s", b.addr, resp.Status, errorBody(body))
	}
	return body, resp.StatusCode, nil
}

// parseRetryAfter reads an integer-seconds Retry-After header value;
// absent or unparsable values mean one second, the interval fx8d's
// admission control advertises.
func parseRetryAfter(v string) time.Duration {
	if secs, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return time.Second
}

// BackendStats is one backend's share of a client's work.
type BackendStats struct {
	Addr     string
	Units    uint64 // units this backend completed
	Failures int64  // consecutive failures (reset on success)
	Dead     bool
	InFlight int64 // units in flight right now

	// Per-attempt request latency quantiles, estimated from the
	// backend's histogram; zero until the backend has served an
	// attempt.
	P50, P95, P99 time.Duration
}

// Stats snapshots how the client's units were executed — which
// backends did the work and how fast, how many units fell back to
// local compute, how many hedges fired, how many attempts were
// rerouted after a failure, how many backends were quarantined, and
// how many batched requests succeeded.
type Stats struct {
	Backends    []BackendStats
	Fallbacks   uint64
	Hedges      uint64
	Batches     uint64
	Reroutes    uint64
	Quarantines uint64

	// Retry snapshots the client's retry-policy outcomes: attempts,
	// retries, give-ups, and backoff waits.
	Retry retry.Snapshot
}

// Stats returns a snapshot of the client's scheduling outcomes.
func (c *Client[U, R]) Stats() Stats {
	s := Stats{
		Fallbacks:   c.fallbackN.Load(),
		Hedges:      c.hedgeN.Load(),
		Batches:     c.batchN.Load(),
		Reroutes:    c.rerouteN.Load(),
		Quarantines: c.quarantineN.Load(),
		Retry:       c.rmetrics.Snapshot(),
	}
	for _, b := range c.view() {
		p50, p95, p99 := b.lat.Snapshot().Quantiles()
		s.Backends = append(s.Backends, BackendStats{
			Addr:     b.addr,
			Units:    b.units.Load(),
			Failures: b.failures.Load(),
			Dead:     b.dead.Load(),
			InFlight: b.inflight.Load(),
			P50:      time.Duration(p50),
			P95:      time.Duration(p95),
			P99:      time.Duration(p99),
		})
	}
	return s
}
