package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/retry"
)

// ErrorResponse is the service's unified error envelope: every
// non-200 response from fx8d carries this JSON body, so clients can
// branch on a machine-readable Code instead of parsing prose and can
// quote RequestID when correlating a failure with the backend's trace
// log.  It lives in this package — not internal/service — because the
// client parses it and the service imports the client's types, never
// the reverse.
type ErrorResponse struct {
	// Code is one of the Code* constants below.
	Code string `json:"code"`

	// Message is the human-readable detail.
	Message string `json:"message"`

	// RequestID echoes the X-Request-Id the server assigned (or was
	// given), the handle for GET /v1/trace/{id} on that backend.
	RequestID string `json:"request_id,omitempty"`
}

// Error implements error so a decoded envelope can be returned
// directly.
func (e ErrorResponse) Error() string {
	if e.Code == "" {
		return e.Message
	}
	return e.Code + ": " + e.Message
}

// The machine-readable error codes.  Every code the service emits is
// listed here and documented in the README's error-code table.
const (
	// CodeInvalidConfig: the request body failed validation — bad
	// JSON, out-of-range parameters, an unknown kind.  HTTP 400.
	CodeInvalidConfig = "invalid_config"

	// CodeNotFound: no resource under that path — an unknown artefact
	// or job ID.  HTTP 404.
	CodeNotFound = "not_found"

	// CodeShed: the admission queue is full and the request was shed;
	// retry after the Retry-After delay.  HTTP 429.
	CodeShed = "shed"

	// CodeConflict: the request is valid but the resource's state
	// forbids it — cancelling an already-finished job.  HTTP 409.
	CodeConflict = "conflict"

	// CodeInternal: the handler failed to execute or encode a
	// response.  HTTP 500.
	CodeInternal = "internal"
)

// errorBody renders a non-200 response body for an error string: the
// envelope's "code: message" when the body decodes as one, otherwise
// the trimmed body truncated to 200 bytes (pre-envelope daemons,
// proxies in the path).
func errorBody(body []byte) string {
	var e ErrorResponse
	if err := json.Unmarshal(body, &e); err == nil && e.Code != "" {
		return e.Error()
	}
	msg := strings.TrimSpace(string(body))
	if len(msg) > 200 {
		msg = msg[:200]
	}
	return msg
}

// PostUnit executes one unit on one backend endpoint in a single
// attempt: the unit is POSTed as JSON to url and the 200 response
// body decoded as R.  No rerouting, hedging or fallback happens here
// — this is the one-shot primitive for callers that do their own
// scheduling, like the coordinator's dispatch loop, which reroutes a
// failed unit by releasing its lease back to the ledger.  The
// driving context's request ID (obs.WithRequestID) is forwarded, a
// non-200 response surfaces the error envelope's code in the error
// string, and timeout <= 0 means DefaultUnitTimeout.
func PostUnit[U, R any](ctx context.Context, httpc *http.Client, url string, unit U, timeout time.Duration) (R, error) {
	var zero R
	payload, err := json.Marshal(unit)
	if err != nil {
		return zero, fmt.Errorf("remote: encoding unit: %w", err)
	}
	if timeout <= 0 {
		timeout = DefaultUnitTimeout
	}
	if httpc == nil {
		httpc = http.DefaultClient
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return zero, fmt.Errorf("remote: %s: %w", url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if id := obs.RequestID(ctx); id != "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return zero, fmt.Errorf("remote: %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return zero, fmt.Errorf("remote: %s: reading response: %w", url, err)
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		// A shed: surface the advertised Retry-After as a hint so the
		// caller's retry policy waits the server's interval instead of
		// re-entering the queue it was just shed from.
		err := fmt.Errorf("remote: %s: %s: %s", url, resp.Status, errorBody(body))
		return zero, retry.WithAfter(err, parseRetryAfter(resp.Header.Get("Retry-After")))
	}
	if resp.StatusCode != http.StatusOK {
		return zero, fmt.Errorf("remote: %s: %s: %s", url, resp.Status, errorBody(body))
	}
	var out R
	if err := json.Unmarshal(body, &out); err != nil {
		return zero, fmt.Errorf("remote: %s: decoding result: %w", url, err)
	}
	return out, nil
}
