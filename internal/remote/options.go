package remote

import (
	"net/http"
	"time"

	"repro/internal/retry"
)

// BackendSource supplies the current fleet membership: Snapshot
// returns the live backend addresses, in a stable order.  The
// coordinator's registry (internal/coord.Registry, fed by POST
// /v1/backends/register heartbeats) implements it; a client built
// with WithRegistry re-reads the snapshot on every unit or batch and
// follows joins and leaves without reconstruction.
type BackendSource interface {
	Snapshot() []string
}

// Option configures a Config functionally, so call sites name only
// the knobs they mean to turn and zero-value footguns (a BatchUnits
// without a BatchPath, a hedge of 0 meaning "default" in one place
// and "off" in another) stay inside this package.  Build a Config
// with Options(...) or pass options straight to StudyClient /
// SweepClient.
type Option func(*Config)

// Options folds opts into a Config.  The result still goes through
// NewClient's defaulting, so an unset knob means its Default*.
func Options(opts ...Option) Config {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithBackends sets the static backend list (the -backends flag
// path).  When a registry is also configured, the registry's snapshot
// replaces this list on first use.
func WithBackends(addrs ...string) Option {
	return func(c *Config) { c.Backends = addrs }
}

// WithRegistry makes fleet membership dynamic: the client re-reads
// src.Snapshot() before every unit or batch, adding backends that
// joined and dropping ones whose heartbeat lapsed.  A backend that
// leaves and rejoins keeps its latency history but has its failure
// quarantine cleared — re-registration is the operator's "it's fixed"
// signal.
func WithRegistry(src BackendSource) Option {
	return func(c *Config) { c.Registry = src }
}

// WithHedge sets how long a unit's newest attempt may run before a
// duplicate is fired at another backend.  d <= 0 keeps
// DefaultHedgeAfter.
func WithHedge(d time.Duration) Option {
	return func(c *Config) { c.HedgeAfter = d }
}

// WithBatch sets how many units one batched POST carries.  units == 1
// forces unbatched execution (no batch path is configured); units <=
// 0 keeps the constructor default.
func WithBatch(units int) Option {
	return func(c *Config) { c.BatchUnits = units }
}

// WithUnitTimeout bounds one attempt of one unit on one backend.
// d <= 0 keeps DefaultUnitTimeout.
func WithUnitTimeout(d time.Duration) Option {
	return func(c *Config) { c.UnitTimeout = d }
}

// WithMaxFailures sets how many consecutive failed units quarantine a
// backend.  n <= 0 keeps DefaultMaxFailures.
func WithMaxFailures(n int) Option {
	return func(c *Config) { c.MaxFailures = n }
}

// WithHTTPClient overrides the transport (tests, custom timeouts).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Config) { c.HTTPClient = h }
}

// WithRetry sets the retry/backoff policy governing shed-induced
// backoff rounds and the per-attempt timeout.  The zero Policy keeps
// the retry package defaults.
func WithRetry(p retry.Policy) Option {
	return func(c *Config) { c.Retry = p }
}
