package remote

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestOptionsCompose(t *testing.T) {
	h := &http.Client{}
	cfg := Options(
		WithBackends("a:1", "b:2"),
		WithHedge(5*time.Second),
		WithBatch(7),
		WithUnitTimeout(time.Minute),
		WithMaxFailures(9),
		WithHTTPClient(h),
	)
	if len(cfg.Backends) != 2 || cfg.Backends[0] != "a:1" {
		t.Errorf("Backends = %v", cfg.Backends)
	}
	if cfg.HedgeAfter != 5*time.Second {
		t.Errorf("HedgeAfter = %v", cfg.HedgeAfter)
	}
	if cfg.BatchUnits != 7 {
		t.Errorf("BatchUnits = %d", cfg.BatchUnits)
	}
	if cfg.UnitTimeout != time.Minute {
		t.Errorf("UnitTimeout = %v", cfg.UnitTimeout)
	}
	if cfg.MaxFailures != 9 {
		t.Errorf("MaxFailures = %d", cfg.MaxFailures)
	}
	if cfg.HTTPClient != h {
		t.Error("HTTPClient not threaded")
	}
}

func TestWithBatchOneDisablesBatching(t *testing.T) {
	c := StudyClient(WithBackends("a:1"), WithBatch(1))
	if n := c.BatchUnits(); n != 1 {
		t.Fatalf("BatchUnits() = %d with WithBatch(1), want 1 (unbatched)", n)
	}
	// The default remains batched.
	c2 := StudyClient(WithBackends("a:1"))
	if n := c2.BatchUnits(); n != DefaultBatchUnits {
		t.Fatalf("BatchUnits() = %d by default, want %d", n, DefaultBatchUnits)
	}
}

// memberList is a test BackendSource with a settable snapshot.
type memberList struct {
	mu    sync.Mutex
	addrs []string
}

func (m *memberList) set(addrs ...string) {
	m.mu.Lock()
	m.addrs = addrs
	m.mu.Unlock()
}

func (m *memberList) Snapshot() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.addrs...)
}

func TestRegistryMembershipFollowsSnapshot(t *testing.T) {
	t.Parallel()
	var servedA, servedB atomic.Int64
	a := echoBackend(t, &servedA)
	b := echoBackend(t, &servedB)

	reg := &memberList{}
	reg.set(a.URL)
	c := NewClient(Config{Path: "/", Registry: reg, HedgeAfter: time.Hour}, echoLocal)

	ctx := context.Background()
	if _, err := c.RunUnit(ctx, echoUnit{X: 1}); err != nil {
		t.Fatal(err)
	}
	if servedA.Load() == 0 {
		t.Fatal("backend A served nothing while sole member")
	}

	// B joins, A leaves: the next unit must land on B.
	reg.set(b.URL)
	if _, err := c.RunUnit(ctx, echoUnit{X: 2}); err != nil {
		t.Fatal(err)
	}
	if servedB.Load() == 0 {
		t.Fatal("backend B served nothing after joining")
	}
	if got := servedA.Load(); got != 1 {
		t.Fatalf("backend A served %d units after leaving, want 1", got)
	}

	// Stats reports only current members, with B's unit tally.
	st := c.Stats()
	if len(st.Backends) != 1 || st.Backends[0].Addr != b.URL {
		t.Fatalf("Stats().Backends = %+v, want just %s", st.Backends, b.URL)
	}
}

func TestRegistryRejoinClearsQuarantine(t *testing.T) {
	t.Parallel()
	var served atomic.Int64
	good := echoBackend(t, &served)
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	t.Cleanup(bad.Close)

	reg := &memberList{}
	reg.set(bad.URL)
	c := NewClient(Config{Path: "/", Registry: reg, MaxFailures: 1, HedgeAfter: time.Hour}, echoLocal)

	ctx := context.Background()
	// One failure quarantines bad; the unit falls back to local.
	if _, err := c.RunUnit(ctx, echoUnit{X: 1}); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Quarantines != 1 {
		t.Fatalf("Quarantines = %d, want 1", got.Quarantines)
	}

	// bad leaves; good joins; then bad rejoins — revived, but good is
	// less loaded and both are live, so just assert bad is not dead.
	reg.set(good.URL)
	if _, err := c.RunUnit(ctx, echoUnit{X: 2}); err != nil {
		t.Fatal(err)
	}
	reg.set(good.URL, bad.URL)
	c.refresh()
	for _, b := range c.view() {
		if b.addr == bad.URL && b.dead.Load() {
			t.Fatal("rejoined backend still quarantined")
		}
	}
}

func TestErrorEnvelopeSurfacedInErrorString(t *testing.T) {
	t.Parallel()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(ErrorResponse{
			Code: CodeInvalidConfig, Message: "cores out of range", RequestID: "abc123",
		})
	}))
	t.Cleanup(srv.Close)

	_, err := PostUnit[echoUnit, echoResult](context.Background(), nil, srv.URL, echoUnit{X: 1}, time.Minute)
	if err == nil {
		t.Fatal("PostUnit succeeded against an erroring backend")
	}
	if !strings.Contains(err.Error(), CodeInvalidConfig+": cores out of range") {
		t.Fatalf("error %q does not surface the envelope code", err)
	}

	// Non-envelope bodies still surface, truncated.
	plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "old-style text error", http.StatusInternalServerError)
	}))
	t.Cleanup(plain.Close)
	_, err = PostUnit[echoUnit, echoResult](context.Background(), nil, plain.URL, echoUnit{X: 1}, time.Minute)
	if err == nil || !strings.Contains(err.Error(), "old-style text error") {
		t.Fatalf("plain-body error not surfaced: %v", err)
	}
}

func TestPostUnitRoundTrip(t *testing.T) {
	t.Parallel()
	srv := echoBackend(t, nil)
	res, err := PostUnit[echoUnit, echoResult](context.Background(), nil, srv.URL, echoUnit{X: 21}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Y != 42 {
		t.Fatalf("PostUnit = %+v, want Y=42", res)
	}
}
