package repro

// Benchmark harness: one benchmark per table and figure of the study's
// evaluation.  Each benchmark regenerates its artefact from a shared
// measurement campaign and reports the headline quantities the paper
// reports for it via b.ReportMetric, so `go test -bench=.` reprints
// the whole evaluation.  The campaign itself (the expensive part) runs
// once and is shared across benchmarks.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/monitor"
)

// campaign returns the shared quick-scale campaign.  core.CachedStudy
// memoizes it by configuration, so the expensive part runs once no
// matter how many benchmarks ask for it — or how concurrently.
func campaign(b *testing.B) *core.Study {
	b.Helper()
	return core.CachedStudy(core.QuickScale(), 0)
}

// renderBench times an artefact generator and returns the last output
// so callers can attach metrics.
func renderBench(b *testing.B, st *core.Study, fn func(*core.Study) string) string {
	b.Helper()
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = fn(st)
	}
	b.StopTimer()
	if out == "" {
		b.Fatal("empty artefact")
	}
	return out
}

func BenchmarkTable1_EventCounts(b *testing.B) {
	st := campaign(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = experiments.Table1(st.Overall)
	}
	b.StopTimer()
	_ = out
	b.ReportMetric(float64(st.Overall.Records), "records")
}

func BenchmarkTable2_OverallConcurrency(b *testing.B) {
	st := campaign(b)
	renderBench(b, st, experiments.Table2)
	m := st.OverallMeasures
	b.ReportMetric(m.Cw, "Cw")
	if m.Defined {
		b.ReportMetric(m.Pc, "Pc")
		b.ReportMetric(m.CCond[8], "c8|c")
	}
}

func BenchmarkTable3_ModelsVsCw(b *testing.B) {
	st := campaign(b)
	renderBench(b, st, experiments.Table3)
	if m := st.Models.VsCw[core.MeasureMissRate]; m.Err == nil {
		b.ReportMetric(m.Fit.R2, "missR2")
	}
	if m := st.Models.VsCw[core.MeasureBusBusy]; m.Err == nil {
		b.ReportMetric(m.Fit.R2, "busR2")
	}
}

func BenchmarkTable4_ModelsVsPc(b *testing.B) {
	st := campaign(b)
	renderBench(b, st, experiments.Table4)
	if m := st.Models.VsPc[core.MeasureMissRate]; m.Err == nil {
		b.ReportMetric(m.Fit.R2, "missR2")
	}
}

func BenchmarkTableA1_SampleMeans(b *testing.B) {
	st := campaign(b)
	renderBench(b, st, experiments.TableA1)
	b.ReportMetric(float64(len(st.RandomSamples)), "samples")
}

func BenchmarkFigure3_ActiveHistogram(b *testing.B) {
	st := campaign(b)
	renderBench(b, st, experiments.Figure3)
	total := 0
	for _, n := range st.Overall.Num {
		total += n
	}
	if total > 0 {
		b.ReportMetric(float64(st.Overall.Num[8])/float64(total), "c8")
		b.ReportMetric(float64(st.Overall.Num[0])/float64(total), "c0")
	}
}

func BenchmarkFigure4_CwDistribution(b *testing.B) {
	st := campaign(b)
	renderBench(b, st, experiments.Figure4)
	conc, _ := core.SplitByConcurrency(st.RandomSamples)
	b.ReportMetric(float64(len(conc))/float64(len(st.RandomSamples)), "concFrac")
}

func BenchmarkFigure5_PcDistribution(b *testing.B) {
	st := campaign(b)
	renderBench(b, st, experiments.Figure5)
	conc, _ := core.SplitByConcurrency(st.RandomSamples)
	high := 0
	for _, s := range conc {
		if s.Conc.Pc > 6.5 {
			high++
		}
	}
	if len(conc) > 0 {
		b.ReportMetric(float64(high)/float64(len(conc)), "PcGt6.5")
	}
}

func BenchmarkFigure6_TransitionHistogram(b *testing.B) {
	st := campaign(b)
	renderBench(b, st, experiments.Figure6)
	b.ReportMetric(st.Transitions.TransitionShare(2), "share2")
	b.ReportMetric(st.Transitions.TransitionShare(7), "share7")
}

func BenchmarkFigure7_PerProcessorActivity(b *testing.B) {
	st := campaign(b)
	renderBench(b, st, experiments.Figure7)
	tr := st.Transitions
	var total int
	for _, c := range tr.Prof {
		total += c
	}
	if total > 0 {
		b.ReportMetric(float64(tr.Prof[0]+tr.Prof[7])/float64(total), "ce07Share")
	}
}

func BenchmarkFigure8_MissrateVsCw(b *testing.B) {
	st := campaign(b)
	renderBench(b, st, experiments.Figure8)
	xs, ys := core.Columns(st.AllSamples, core.SelCw, core.SelMissRate)
	b.ReportMetric(float64(len(xs)), "points")
	_ = ys
}

func BenchmarkFigure9_MissrateVsPc(b *testing.B) {
	st := campaign(b)
	renderBench(b, st, experiments.Figure9)
}

func BenchmarkFigure10_MissrateByCwBand(b *testing.B) {
	st := campaign(b)
	renderBench(b, st, experiments.Figure10)
	xs, ys := core.Columns(st.AllSamples, core.SelCw, core.SelMissRate)
	var lo, hi []float64
	for i := range xs {
		switch {
		case xs[i] <= 0.4:
			lo = append(lo, ys[i])
		case xs[i] > 0.8:
			hi = append(hi, ys[i])
		}
	}
	b.ReportMetric(medianOf(lo), "medLoCw")
	b.ReportMetric(medianOf(hi), "medHiCw")
}

func BenchmarkFigure11_MissrateByPcBand(b *testing.B) {
	st := campaign(b)
	renderBench(b, st, experiments.Figure11)
}

func BenchmarkFigure12_ModelMissrateCw(b *testing.B) {
	st := campaign(b)
	renderBench(b, st, experiments.Figure12)
	atHalf, atFull, ratio := st.Models.MissRateIncrease()
	b.ReportMetric(atHalf, "missAt0.5")
	b.ReportMetric(atFull, "missAt1.0")
	b.ReportMetric(ratio, "increase")
}

func BenchmarkFigure13_ModelBusBusyCw(b *testing.B) {
	st := campaign(b)
	renderBench(b, st, experiments.Figure13)
	if m := st.Models.VsCw[core.MeasureBusBusy]; m.Err == nil {
		b.ReportMetric(m.Fit.Eval(1.0), "busAtCw1")
	}
}

func BenchmarkFigure14_ModelBusBusyPc(b *testing.B) {
	st := campaign(b)
	renderBench(b, st, experiments.Figure14)
}

func BenchmarkFigureA1A2_PerSession(b *testing.B) {
	st := campaign(b)
	renderBench(b, st, experiments.FigureA1A2)
}

func BenchmarkFigureA3A4A5_SystemMeasureDistributions(b *testing.B) {
	st := campaign(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = experiments.FigureA3(st) + experiments.FigureA4(st) + experiments.FigureA5(st)
	}
	b.StopTimer()
	_ = out
}

func BenchmarkFigureB1B2_BusBusyScatter(b *testing.B) {
	st := campaign(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = experiments.FigureB1(st) + experiments.FigureB2(st)
	}
	b.StopTimer()
	_ = out
}

func BenchmarkFigureB3B4_BusBusyBands(b *testing.B) {
	st := campaign(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = experiments.FigureB3(st) + experiments.FigureB4(st)
	}
	b.StopTimer()
	_ = out
}

func BenchmarkFigureB5B6_PageFaultScatter(b *testing.B) {
	st := campaign(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = experiments.FigureB5(st) + experiments.FigureB6(st)
	}
	b.StopTimer()
	_ = out
}

func BenchmarkFigureB7B8_PageFaultBands(b *testing.B) {
	st := campaign(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = experiments.FigureB7(st) + experiments.FigureB8(st)
	}
	b.StopTimer()
	_ = out
}

func BenchmarkFigureB9B10_PageFaultModels(b *testing.B) {
	st := campaign(b)
	var out string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = experiments.FigureB9(st) + experiments.FigureB10(st)
	}
	b.StopTimer()
	_ = out
	if m := st.Models.VsCw[core.MeasurePageFaultRate]; m.Err == nil {
		b.ReportMetric(m.Fit.R2, "pfR2")
	}
}

// BenchmarkCampaign_RandomSession measures the cost of one full
// random-sampling measurement session — the unit of the study's
// chapter 4 campaign.
func BenchmarkCampaign_RandomSession(b *testing.B) {
	spec := core.SessionSpec{
		Samples:  4,
		Sampling: monitor.SampleSpec{Snapshots: 5, GapCycles: 5_000},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.Seed = uint64(i)
		core.RunRandomSession(i, spec)
	}
}

// BenchmarkSimulator_CyclesPerSecond measures raw simulator throughput
// under the PaperMix workload.
func BenchmarkSimulator_CyclesPerSecond(b *testing.B) {
	sys := core.NewSystem(paperMixProfile(12345), uint64(b.N)+1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step()
	}
}

func medianOf(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	c := append([]float64(nil), v...)
	for i := range c {
		for j := i + 1; j < len(c); j++ {
			if c[j] < c[i] {
				c[i], c[j] = c[j], c[i]
			}
		}
	}
	return c[len(c)/2]
}
